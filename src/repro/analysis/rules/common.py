"""Shared AST plumbing for the rule set.

Rules need to know what a name *means* — whether ``rnd.Random()`` is
``random.Random`` under an alias, whether ``np.random.seed`` is numpy's
global-state API. :class:`ImportMap` records the module's import
aliases; :func:`resolve_dotted` expands an expression like
``np.random.default_rng`` into its canonical dotted path
(``numpy.random.default_rng``) using that map.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


class ImportMap:
    """Local-name → canonical dotted path, from a module's import statements."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a`` (to package a); ``import
                    # a.b as c`` binds ``c`` to ``a.b``.
                    self.aliases[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, name: str) -> str:
        """The canonical path a bare local name refers to (itself if unknown)."""
        return self.aliases.get(name, name)


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def resolve_dotted(node: ast.expr, imports: ImportMap) -> Optional[str]:
    """Canonical dotted path of an expression, honoring import aliases."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical_head = imports.canonical(head)
    return f"{canonical_head}.{rest}" if rest else canonical_head


def call_keywords(node: ast.Call) -> Dict[str, ast.expr]:
    return {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}


def is_none_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None
