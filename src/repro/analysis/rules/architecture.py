"""ARCH — the package layer map is enforced at import time.

The SoA filter-core refactor and the multi-process gateway (ROADMAP
items 1 and 2) will move code across package boundaries; this rule pins
the boundaries first. Every top-level package under ``repro`` sits in a
numbered layer, and a module may only *module-level* import packages in
strictly lower layers (its own package is always allowed):

====  =================================
layer  packages
====  =================================
0     ``<root>`` facade, ``rng``, ``config``, ``geometry``
1     ``floorplan``
2     ``graph``
3     ``rfid``, ``index``, ``obs``
4     ``io``, ``viz``, ``collector``
5     ``core``
6     ``filters``
7     ``cache``
8     ``analytics``
9     ``queries``
10    ``symbolic``
11    ``sim``
12    ``service``
13    ``bench``, ``analysis``, ``gateway``
14    ``cli``
====  =================================

Only *import-time* edges are governed: imports inside ``if
TYPE_CHECKING:`` blocks and inside function bodies are the sanctioned
seams for upward references (annotations and call-time shims create no
import-time coupling and no cycles). The ``repro/__init__`` facade is
exempt — re-exporting the public API is its job.

``repro.obs`` gets one extra constraint: outside the ``obs`` package
itself it may be imported **only as its no-op facade** — ``import
repro.obs [as alias]`` — never ``from repro.obs import x`` or ``import
repro.obs.submodule``. The facade is what keeps observability
off-by-default and zero-cost on hot paths; importing a submodule
bypasses the enable/disable seam.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RuleMeta, register_project_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ProjectModule, ProjectUnderCheck

#: The declarative layer map: top-level package under ``repro`` -> layer.
#: A module may only module-level import packages with a strictly lower
#: layer number (same-package imports are always allowed).
LAYERS: Dict[str, int] = {
    "<root>": 0,
    "rng": 0,
    "config": 0,
    "geometry": 0,
    "floorplan": 1,
    "graph": 2,
    "rfid": 3,
    "index": 3,
    "obs": 3,
    "io": 4,
    "viz": 4,
    "collector": 4,
    "core": 5,
    "filters": 6,
    "cache": 7,
    "analytics": 8,
    "queries": 9,
    "symbolic": 10,
    "sim": 11,
    "service": 12,
    "bench": 13,
    "analysis": 13,
    "gateway": 13,
    "cli": 14,
}

#: Dotted module names exempt from layering (the public-API facade).
EXEMPT_MODULES = frozenset({"repro"})


def _target_package(target: str) -> str:
    """Top-level package of an imported dotted path (``<root>`` for repro)."""
    parts = target.split(".")
    if parts[0] != "repro":
        return ""
    return parts[1] if len(parts) > 1 else "<root>"


@register_project_rule
class ArchitectureRule:
    META = RuleMeta(
        rule_id="ARCH",
        title="package layer map holds at import time",
        invariant=(
            "module-level imports respect the declarative layer map "
            "(lower layers never import higher ones); repro.obs is "
            "imported only as its no-op facade"
        ),
        severity=Severity.ERROR,
    )

    def check_project(self, project: ProjectUnderCheck) -> List[Finding]:
        findings: List[Finding] = []
        for name in sorted(project.modules):
            module = project.modules[name]
            if module.name in EXEMPT_MODULES:
                continue
            findings.extend(self._check_module(project, module))
        return findings

    def _check_module(
        self, project: ProjectUnderCheck, module: ProjectModule
    ) -> List[Finding]:
        findings: List[Finding] = []
        own_layer = LAYERS.get(module.package)
        for edge in project.module_level_imports(module):
            target_pkg = _target_package(edge.target)
            if not target_pkg or target_pkg == module.package:
                continue
            node = edge.node
            if target_pkg == "obs" and not (
                edge.plain_import and edge.target == "repro.obs"
            ):
                findings.append(
                    Finding(
                        rule=self.META.rule_id,
                        severity=self.META.severity,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"`{edge.target}` bypasses the repro.obs no-op "
                            "facade; import the package itself "
                            "(`import repro.obs as obs`) or defer to a "
                            "function-scoped import"
                        ),
                    )
                )
                continue
            target_layer = LAYERS.get(target_pkg)
            if own_layer is None or target_layer is None:
                continue  # unmapped package: ungoverned (fixtures, new code)
            if target_layer >= own_layer:
                findings.append(
                    Finding(
                        rule=self.META.rule_id,
                        severity=self.META.severity,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"layer violation: `{module.package}` (layer "
                            f"{own_layer}) must not module-level import "
                            f"`{target_pkg}` (layer {target_layer}); move "
                            "the import into the using function or invert "
                            "the dependency"
                        ),
                    )
                )
        return findings
