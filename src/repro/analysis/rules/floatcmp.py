"""FP — no exact equality between float-valued geometric expressions.

Distances, projections, and coordinates in ``repro.geometry`` /
``repro.graph`` are accumulated floats; ``==``/``!=`` on them is either
a latent tolerance bug or — where exact comparison *is* the intent
(degenerate-zero guards on freshly computed squared lengths) — a
decision that deserves an explicit pragma with its rationale.

Flagged: ``==`` / ``!=`` comparisons where either operand is
float-typed by local evidence — a float literal, a coordinate attribute
(``.x`` / ``.y``), a call into ``math.sqrt``/``hypot``/``dist``/
``fsum``, or an arithmetic expression over such operands. Chained
comparisons are checked pairwise. ``<``/``<=`` ordering comparisons are
fine (they are tolerance-free by nature), as is equality on ints,
strings, and identifiers with no float evidence.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleUnderCheck, RuleMeta, register_rule
from repro.analysis.rules.common import dotted_name

_COORD_ATTRS = {"x", "y"}

_FLOAT_RETURNING = {
    "math.sqrt",
    "math.hypot",
    "math.dist",
    "math.fsum",
    "math.fabs",
    "math.atan2",
    "math.cos",
    "math.sin",
    "sqrt",
    "hypot",
}


def _is_floaty(node: ast.expr) -> bool:
    """Conservative local evidence that an expression is float-valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Attribute):
        return node.attr in _COORD_ATTRS
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_floaty(node.left) or _is_floaty(node.right)
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted in _FLOAT_RETURNING:
            return True
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            return True
    return False


@register_rule
class FloatEqualityRule:
    META = RuleMeta(
        rule_id="FP",
        title="no exact float equality in geometry",
        severity=Severity.WARNING,
        invariant=(
            "coordinate math never branches on exact float equality; use "
            "tolerances, or pragma the deliberate degenerate-zero guards"
        ),
        applies_to=("repro/geometry", "repro/graph"),
        exempt=(),
    )

    def check(self, module: ModuleUnderCheck) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floaty(left) or _is_floaty(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    findings.append(
                        Finding(
                            rule=self.META.rule_id,
                            severity=self.META.severity,
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"exact float `{symbol}` on a coordinate "
                                "expression; compare with a tolerance "
                                "(or pragma a deliberate degenerate guard)"
                            ),
                        )
                    )
        return findings
