"""CLK — wall-clock reads go through an injectable clock.

Replays, tests, and checkpoint-resume runs must execute the identical
code path with no real time dependence: the scheduler paces through an
injected clock object, and observability reads time through
``obs.set_clock``. A stray ``time.time()`` or ``datetime.now()`` in a
core module silently couples results (timestamps, timeouts, pacing) to
the machine running them.

Flagged inside the core packages: any call *or reference* to
``time.time`` / ``time.monotonic`` / ``time.perf_counter`` /
``time.process_time`` / ``time.sleep`` / ``time.monotonic_ns`` and
friends, ``datetime.datetime.now/utcnow/today``, ``datetime.date.today``.
References count because ``clock: Clock = time.perf_counter`` as a
default argument is exactly how wall-clock leaks past injection seams.

Sanctioned modules (the seams themselves): ``repro/service/scheduler.py``
(``SystemClock``), and the ``repro.obs`` modules whose default clock is
injectable via ``set_clock``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleUnderCheck, RuleMeta, register_rule
from repro.analysis.rules.common import ImportMap, resolve_dotted

_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "sleep",
    "localtime",
    "gmtime",
}

_DATETIME_FACTORIES = {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.datetime.fromtimestamp",
}


@register_rule
class ClockRule:
    META = RuleMeta(
        rule_id="CLK",
        title="injectable clocks only",
        invariant=(
            "core packages never read the wall clock directly; time flows "
            "through the scheduler's injectable clock or obs.set_clock"
        ),
        severity=Severity.ERROR,
        applies_to=(
            "repro/core",
            "repro/filters",
            "repro/service",
            "repro/sim",
            "repro/collector",
            "repro/cache",
            "repro/queries",
            "repro/obs",
            "repro/analytics",
        ),
        exempt=(
            "repro/service/scheduler.py",
            "repro/obs/__init__.py",
            "repro/obs/registry.py",
            "repro/obs/tracer.py",
        ),
    )

    def check(self, module: ModuleUnderCheck) -> List[Finding]:
        imports = ImportMap(module.tree)
        findings: List[Finding] = []
        flagged_positions: Set[Tuple[int, int]] = set()

        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            target = resolve_dotted(node, imports)
            if target is None:
                continue
            message = self._offense(target)
            if message is None:
                continue
            # An Attribute chain walks into its Name child; dedupe on position.
            position = (node.lineno, node.col_offset)
            if position in flagged_positions:
                continue
            flagged_positions.add(position)
            findings.append(
                Finding(
                    rule=self.META.rule_id,
                    severity=self.META.severity,
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )
            )
        return findings

    @staticmethod
    def _offense(target: str) -> Optional[str]:
        if target.startswith("time."):
            attr = target[len("time."):]
            if attr in _TIME_ATTRS:
                return (
                    f"direct wall-clock use `{target}`; accept an injectable "
                    "clock (see service.scheduler.SystemClock / obs.set_clock)"
                )
        if target in _DATETIME_FACTORIES:
            return (
                f"direct wall-clock use `{target}()`; thread a clock or a "
                "timestamp parameter through instead"
            )
        return None
