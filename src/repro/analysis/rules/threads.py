"""THR — shared module state is lock-guarded in shard-worker packages.

``ShardedFilterExecutor`` runs shard tasks on a thread pool; any module
the workers import is effectively concurrent code. Module-level mutable
containers (registries, caches) mutated from function bodies without a
lock are data races waiting for a scheduler interleaving — exactly the
class of bug that silently breaks the serial-vs-thread bit-identity
guarantee.

Two checks, inside the packages shard workers import:

* a module-level ``dict``/``list``/``set`` (literal or constructor,
  annotated or not) mutated from inside a function or method — subscript
  store/delete, mutating method call (``append``/``update``/``pop``/…),
  or augmented assignment — without an enclosing ``with <lock>`` block.
  Mutation *at* module level (import time, single-threaded) is fine;
  read access anywhere is fine.
* a bare ``<lock>.acquire()`` call — exception paths leak the lock;
  use ``with lock:`` so release is unconditional.

A name counts as a lock if its dotted text contains ``lock`` or
``mutex`` (case-insensitive): ``_LOCK``, ``self._lock``,
``cache.write_lock`` all qualify.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleUnderCheck, RuleMeta, register_rule
from repro.analysis.rules.common import dotted_name

_MUTATING_METHODS = {
    "append",
    "add",
    "update",
    "pop",
    "popitem",
    "clear",
    "extend",
    "insert",
    "remove",
    "discard",
    "setdefault",
    "sort",
    "reverse",
    "appendleft",
    "popleft",
}

_CONTAINER_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "collections.defaultdict",
    "collections.deque",
    "collections.OrderedDict",
    "collections.Counter",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
}


def _is_container_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        return dotted in _CONTAINER_CONSTRUCTORS
    return False


def _looks_like_lock(text: Optional[str]) -> bool:
    if not text:
        return False
    lowered = text.lower()
    return "lock" in lowered or "mutex" in lowered


def module_level_containers(tree: ast.Module) -> Set[str]:
    """Names bound at module level to a mutable container."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_container_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id != "__all__":
                names.add(target.id)
    return names


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for stmt in ast.walk(tree):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _walk_with_lock_state(func: ast.AST) -> Iterator[Tuple[ast.AST, bool]]:
    """DFS over one function body, tracking ``with <lock>`` nesting.

    Does not descend into nested ``def``s — those run later, outside the
    enclosing ``with`` block, and are visited as functions of their own.
    """
    stack: List[Tuple[ast.AST, bool]] = [(func, False)]
    while stack:
        node, guarded = stack.pop()
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            _looks_like_lock(dotted_name(item.context_expr)) for item in node.items
        ):
            guarded = True
        yield node, guarded
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append((child, guarded))


@register_rule
class ThreadSafetyRule:
    META = RuleMeta(
        rule_id="THR",
        title="lock-guarded shared module state",
        invariant=(
            "module-level mutable containers in shard-worker packages are "
            "only mutated under a lock; locks are held via `with`, never "
            "bare .acquire()"
        ),
        severity=Severity.ERROR,
        applies_to=(
            "repro/core",
            "repro/filters",
            "repro/service",
            "repro/cache",
            "repro/collector",
            "repro/obs",
            "repro/index",
            "repro/analytics",
        ),
        exempt=(),
    )

    def check(self, module: ModuleUnderCheck) -> List[Finding]:
        shared = module_level_containers(module.tree)
        findings: List[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.META.rule_id,
                    severity=self.META.severity,
                    path=module.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                )
            )

        for func in _functions(module.tree):
            for node, lock_held in _walk_with_lock_state(func):
                self._check_node(node, shared, lock_held, flag)
        return findings

    def _check_node(
        self,
        node: ast.AST,
        shared: Set[str],
        lock_held: bool,
        flag: Callable[[ast.AST, str], None],
    ) -> None:
        # with-less lock acquisition, guarded or not.
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "acquire" and _looks_like_lock(
                dotted_name(node.func.value)
            ):
                flag(
                    node,
                    f"bare `{dotted_name(node.func.value)}.acquire()`; "
                    "use `with` so the lock is released on every exit path",
                )
                return
        if lock_held or not shared:
            return
        if isinstance(node, (ast.Assign, ast.Delete)):
            targets = node.targets
            for target in targets:
                name = self._subscript_global(target, shared)
                if name is not None:
                    flag(
                        node,
                        f"unguarded mutation of module-level container "
                        f"`{name}`; wrap in `with <lock>:`",
                    )
        elif isinstance(node, ast.AugAssign):
            name = self._subscript_global(node.target, shared)
            if name is None and isinstance(node.target, ast.Name) and node.target.id in shared:
                name = node.target.id
            if name is not None:
                flag(
                    node,
                    f"unguarded mutation of module-level container "
                    f"`{name}`; wrap in `with <lock>:`",
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (
                node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in shared
            ):
                flag(
                    node,
                    f"unguarded `{node.func.value.id}.{node.func.attr}()` on a "
                    "module-level container; wrap in `with <lock>:`",
                )

    @staticmethod
    def _subscript_global(target: ast.expr, shared: Set[str]) -> Optional[str]:
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in shared
        ):
            return target.value.id
        return None
