"""Suppression pragmas: ``# repro-lint: disable=RULE[,RULE]``.

Two granularities:

* **Line** — a pragma comment on the flagged line suppresses findings of
  the named rules (or every rule, with ``disable=all``) on that line::

      if qa == 0.0:  # repro-lint: disable=FP -- exact degenerate guard

  Everything after ``--`` is a free-form rationale; the linter requires
  nothing of it but the review convention is that a pragma without a
  why gets rejected.

* **File** — ``# repro-lint: disable-file=RULE[,RULE]`` in the module's
  first :data:`FILE_PRAGMA_WINDOW` lines exempts the whole module.

Pragmas are part of the framework (not the rules): the driver strips
suppressed findings after every rule has run, and reports how many it
suppressed so silent blanket pragmas show up in the summary.

Every ``disable`` is also a *claim* — "a finding fires here". The index
therefore records each declared ``(line, rule)`` pair and marks it used
when it suppresses something; :meth:`PragmaIndex.unused_declarations`
is what the driver's stale-pragma report (rule id ``PRAGMA``) is built
from. A pragma that suppresses nothing is dead weight that silently
widens the exemption surface, so full-rule-set runs flag it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding

#: File-level pragmas must appear in the first N physical lines.
FILE_PRAGMA_WINDOW = 10

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z*][A-Za-z0-9_,*\s]*)"
)

ALL = frozenset({"all"})

#: One declared suppression: ``(kind, line of the pragma comment, rule id)``
#: where kind is ``"line"`` or ``"file"``. The rule id is uppercased, or
#: the literal ``"all"`` for blankets.
Declaration = Tuple[str, int, str]


def _parse_rules(raw: str) -> FrozenSet[str]:
    rules = {part.strip() for part in raw.split(",") if part.strip()}
    if "all" in {r.lower() for r in rules} or "*" in rules:
        return ALL
    return frozenset(r.upper() for r in rules)


@dataclass
class PragmaIndex:
    """Parsed suppressions of one module: line pragmas + file pragmas.

    Mutable only in its usage-tracking set: :meth:`suppresses` marks the
    declarations that matched, so after a full run
    :meth:`unused_declarations` names the pragmas that earned nothing.
    """

    line_rules: Dict[int, FrozenSet[str]]
    file_rules: FrozenSet[str]
    #: rule id (or ``"all"``) -> line the file pragma was declared on.
    file_rule_lines: Dict[str, int] = field(default_factory=dict)
    _used: Set[Declaration] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        """Whether the finding is pragma-suppressed (and mark usage)."""
        suppressed = False
        if self._matches(self.file_rules, finding.rule):
            key = (
                "all"
                if self.file_rules is ALL or "all" in self.file_rules
                else finding.rule
            )
            self._used.add(("file", self.file_rule_lines.get(key, 0), key))
            suppressed = True
        line_set = self.line_rules.get(finding.line, frozenset())
        if self._matches(line_set, finding.rule):
            key = "all" if line_set is ALL or "all" in line_set else finding.rule
            self._used.add(("line", finding.line, key))
            suppressed = True
        return suppressed

    def declarations(self) -> List[Declaration]:
        """Every declared ``(kind, line, rule)`` suppression, sorted."""
        declared: List[Declaration] = []
        for rule in self.file_rules:
            declared.append(("file", self.file_rule_lines.get(rule, 0), rule))
        for line, rules in self.line_rules.items():
            for rule in rules:
                declared.append(("line", line, rule))
        return sorted(declared, key=lambda d: (d[1], d[0], d[2]))

    def unused_declarations(self) -> List[Declaration]:
        """Declared suppressions that matched no finding this run."""
        return [d for d in self.declarations() if d not in self._used]

    @staticmethod
    def _matches(rules: FrozenSet[str], rule_id: str) -> bool:
        return rules is ALL or "all" in rules or rule_id in rules


def _comment_tokens(lines: List[str]) -> Iterator[Tuple[int, str]]:
    """``(lineno, text)`` of every real comment token.

    Tokenizing (rather than regex-scanning raw lines) is what keeps a
    pragma *example inside a docstring* — like the ones in this module —
    from registering as a declaration the stale-pragma audit then flags.
    Unparseable tail ends (the SYNTAX finding covers those) fall back to
    a plain line scan so broken files keep their suppressions.
    """
    source = "\n".join(lines)
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, text in enumerate(lines, start=1):
            yield lineno, text


def parse_pragmas(lines: List[str]) -> PragmaIndex:
    """Scan a module's comment tokens for pragmas (1-based line index)."""
    line_rules: Dict[int, FrozenSet[str]] = {}
    file_rules: FrozenSet[str] = frozenset()
    file_rule_lines: Dict[str, int] = {}
    for lineno, text in _comment_tokens(lines):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = _parse_rules(match.group("rules"))
        if match.group("kind") == "disable-file":
            if lineno <= FILE_PRAGMA_WINDOW:
                file_rules = frozenset(file_rules | rules)
                for rule in rules:
                    file_rule_lines.setdefault(rule, lineno)
        else:
            line_rules[lineno] = frozenset(line_rules.get(lineno, frozenset()) | rules)
    return PragmaIndex(
        line_rules=line_rules,
        file_rules=file_rules,
        file_rule_lines=file_rule_lines,
    )
