"""Suppression pragmas: ``# repro-lint: disable=RULE[,RULE]``.

Two granularities:

* **Line** — a pragma comment on the flagged line suppresses findings of
  the named rules (or every rule, with ``disable=all``) on that line::

      if qa == 0.0:  # repro-lint: disable=FP -- exact degenerate guard

  Everything after ``--`` is a free-form rationale; the linter requires
  nothing of it but the review convention is that a pragma without a
  why gets rejected.

* **File** — ``# repro-lint: disable-file=RULE[,RULE]`` in the module's
  first :data:`FILE_PRAGMA_WINDOW` lines exempts the whole module.

Pragmas are part of the framework (not the rules): the driver strips
suppressed findings after every rule has run, and reports how many it
suppressed so silent blanket pragmas show up in the summary.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.analysis.findings import Finding

#: File-level pragmas must appear in the first N physical lines.
FILE_PRAGMA_WINDOW = 10

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z*][A-Za-z0-9_,*\s]*)"
)

ALL = frozenset({"all"})


def _parse_rules(raw: str) -> FrozenSet[str]:
    rules = {part.strip() for part in raw.split(",") if part.strip()}
    if "all" in {r.lower() for r in rules} or "*" in rules:
        return ALL
    return frozenset(r.upper() for r in rules)


@dataclass(frozen=True)
class PragmaIndex:
    """Parsed suppressions of one module: line pragmas + file pragmas."""

    line_rules: Dict[int, FrozenSet[str]]
    file_rules: FrozenSet[str]

    def suppresses(self, finding: Finding) -> bool:
        if self._matches(self.file_rules, finding.rule):
            return True
        return self._matches(self.line_rules.get(finding.line, frozenset()), finding.rule)

    @staticmethod
    def _matches(rules: FrozenSet[str], rule_id: str) -> bool:
        return rules is ALL or "all" in rules or rule_id in rules


def parse_pragmas(lines: List[str]) -> PragmaIndex:
    """Scan physical source lines for pragma comments (1-based line index)."""
    line_rules: Dict[int, FrozenSet[str]] = {}
    file_rules: FrozenSet[str] = frozenset()
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = _parse_rules(match.group("rules"))
        if match.group("kind") == "disable-file":
            if lineno <= FILE_PRAGMA_WINDOW:
                file_rules = frozenset(file_rules | rules)
        else:
            line_rules[lineno] = frozenset(line_rules.get(lineno, frozenset()) | rules)
    return PragmaIndex(line_rules=line_rules, file_rules=file_rules)
