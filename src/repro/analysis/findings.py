"""Finding: one invariant violation at one source location.

A finding is deliberately small and serializable: the JSON reporter, the
baseline file, and the text reporter all consume the same dataclass.
Baseline matching uses :meth:`Finding.fingerprint` — ``(path, rule,
message)`` without the line number — so grandfathered violations survive
unrelated edits that shift lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple, Union

JsonScalar = Union[str, int]


class Severity(enum.Enum):
    """How bad a violation is.

    ``ERROR`` findings break the shard-determinism guarantee outright
    (unseeded RNG, wall-clock in a replayed path); ``WARNING`` findings
    are latent hazards (unguarded shared state that today happens to be
    touched single-threaded).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.path, self.rule, self.message)

    def to_dict(self) -> Dict[str, JsonScalar]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: RULE severity: message`` (one text-report row)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity.value}: {self.message}"
        )

    @classmethod
    def from_dict(cls, raw: Dict[str, JsonScalar]) -> "Finding":
        return cls(
            rule=str(raw["rule"]),
            severity=Severity(str(raw.get("severity", "error"))),
            path=str(raw["path"]),
            line=int(raw.get("line", 0)),
            col=int(raw.get("col", 0)),
            message=str(raw["message"]),
        )


def sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    """Stable report order: path, then position, then rule id."""
    return (finding.path, finding.line, finding.col, finding.rule)
