"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (traces, readings, particle
filters, query placement) receives an explicit :class:`numpy.random.Generator`.
This module centralizes how generators are created and how independent child
streams are derived, so that any experiment row can be regenerated in
isolation from its ``(seed, label)`` pair.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned as-is, so callers can thread one stream through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_seed(seed: int, label: str) -> int:
    """Derive a stable 32-bit child seed from a parent seed and a label.

    The derivation is a CRC32 mix, chosen because it is deterministic across
    platforms and Python versions (unlike ``hash``).
    """
    mixed = zlib.crc32(f"{seed}:{label}".encode("utf-8"))
    return int(mixed) & 0x7FFFFFFF


def child_rng(seed: int, label: str) -> np.random.Generator:
    """A fresh generator seeded from ``child_seed(seed, label)``."""
    return np.random.default_rng(child_seed(seed, label))


def filter_run_label(second: int, object_id: str) -> str:
    """The canonical child-stream label of one object's filter run at one tick.

    Every per-object filter run in the system — serial, thread-sharded,
    process-sharded, or resumed from a checkpoint — must derive its
    generator from this exact label, which is what makes results
    bit-identical across shard counts and restarts (the PR-2 shard
    determinism scheme). Filter backends get their stream through
    :func:`filter_run_rng` instead of formatting the label themselves, so
    the convention cannot drift between backends.
    """
    return f"pf:{second}:{object_id}"


def filter_run_rng(seed: int, second: int, object_id: str) -> np.random.Generator:
    """The private generator of one object's filter run at one tick."""
    return child_rng(seed, filter_run_label(second, object_id))
