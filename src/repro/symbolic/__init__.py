"""Symbolic model-based location inference (paper Section 3.3).

The baseline the paper compares against (Yang et al. [29, 30]): an
object's position is assumed *uniformly distributed over all reachable
locations* constrained by its maximum speed, where reachability is
expressed on a *deployment graph* whose vertices are cells — maximal
regions of the indoor space traversable without being detected by any
positioning device.
"""

from repro.symbolic.cells import Cell, DeploymentGraph, build_deployment_graph
from repro.symbolic.devices import DeviceType
from repro.symbolic.inference import SymbolicLocationModel
from repro.symbolic.engine import SymbolicQueryEngine

__all__ = [
    "Cell",
    "DeploymentGraph",
    "build_deployment_graph",
    "DeviceType",
    "SymbolicLocationModel",
    "SymbolicQueryEngine",
]
