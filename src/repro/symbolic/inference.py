"""Symbolic model-based location inference (paper Section 3.3).

The probability model of Yang et al.: an object's location is uniformly
distributed over all possible locations. The cases implemented here:

* **Case 1** — the object is currently observed by reader ``d``: uniform
  over the anchor points inside ``d``'s activation range.
* **Cases 2/4** — the object left device ``d``: it lies in one of the
  cells bordering ``d`` (a presence device keeps it in its single cell;
  an undirected partitioning device allows either side), restricted to
  anchor points within walking distance ``u_max * (t_now - t_last) +
  d.range`` of ``d`` (the maximum-speed constraint).
* **Case 3** — directed partitioning pairs narrow Cases 2/4 to the cell
  the reading order implies (supported when the deployment declares
  entry/exit pairs; the paper's evaluation deployment has none).

"Uniformly distributed over all possible locations" means uniform over
the *2-D area* of the feasible region, not over anchor points: a room is
a few tens of square meters while a hallway stretch of the same walking
length is only a thin band, so most symbolic probability mass sits in
rooms. The model therefore weights each anchor by the area it represents
(room area split over the room's anchors; ``spacing x width`` for
hallway anchors) and normalizes over the feasible set. The result is an
``{anchor: probability}`` distribution — the same form the particle
filter produces — so both inference methods flow through identical query
evaluation code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.collector.collector import EventDrivenCollector, ReadingHistory
from repro.config import SimulationConfig
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.index.hashtable import AnchorObjectTable
from repro.rfid.reader import RFIDReader
from repro.symbolic.cells import anchor_cells, build_deployment_graph
from repro.symbolic.devices import DeviceType


class SymbolicLocationModel:
    """Uniform-over-reachable-locations inference on the deployment graph."""

    def __init__(
        self,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers: Iterable[RFIDReader],
        config: SimulationConfig,
        directed_pairs: Optional[Dict[str, str]] = None,
    ):
        self.graph = graph
        self.anchor_index = anchor_index
        self.config = config
        readers = list(readers)
        self.readers = {r.reader_id: r for r in readers}
        self.deployment = build_deployment_graph(graph, readers, directed_pairs)
        self._anchor_cell = anchor_cells(self.deployment, anchor_index)

        # Static precomputations: per reader, the anchors it covers and the
        # network distance from the reader to every anchor.
        self._covered_anchors: Dict[str, List[int]] = {}
        self._anchor_distance: Dict[str, Dict[int, float]] = {}
        for reader in readers:
            covered = [
                ap.ap_id
                for ap in anchor_index.in_circle(reader.detection_circle)
            ]
            self._covered_anchors[reader.reader_id] = covered
            reader_loc, _ = graph.locate(reader.position)
            self._anchor_distance[reader.reader_id] = {
                ap.ap_id: graph.distance(reader_loc, ap.location)
                for ap in anchor_index
            }

        self._cell_anchors: Dict[int, List[int]] = {}
        for ap_id, cell_id in self._anchor_cell.items():
            if cell_id is not None:
                self._cell_anchors.setdefault(cell_id, []).append(ap_id)

        self._anchor_area = self._compute_anchor_areas()

    def _compute_anchor_areas(self) -> Dict[int, float]:
        """The floor area each anchor point stands for.

        Room anchors share their room's area; hallway anchors represent a
        ``spacing``-long slice of the hallway band. Anchors outside both
        (should not happen on valid plans) get a nominal ``spacing^2``.
        """
        plan = self.graph.floorplan
        spacing = self.anchor_index.spacing
        room_counts: Dict[str, int] = {}
        for ap in self.anchor_index:
            if ap.room_id is not None:
                room_counts[ap.room_id] = room_counts.get(ap.room_id, 0) + 1

        areas: Dict[int, float] = {}
        for ap in self.anchor_index:
            if ap.room_id is not None:
                areas[ap.ap_id] = (
                    plan.room(ap.room_id).area / room_counts[ap.room_id]
                )
            elif ap.hallway_id is not None:
                areas[ap.ap_id] = spacing * plan.hallway(ap.hallway_id).width
            else:
                areas[ap.ap_id] = spacing * spacing
        return areas

    # ------------------------------------------------------------------
    def infer(self, history: ReadingHistory, now: int) -> Optional[Dict[int, float]]:
        """Anchor distribution for one object, or None without readings."""
        if history.is_empty:
            return None
        reader_id = history.latest_reader_id
        last_second = history.last_second
        if now <= last_second:
            return self._uniform(self._covered_anchors[reader_id])

        feasible = self._feasible_anchors(history, now)
        if not feasible:
            # The object just left the reader's boundary: before any anchor
            # becomes reachable, the best symbolic statement is "at the
            # reader's range".
            return self._uniform(self._covered_anchors[reader_id])
        return self._uniform(sorted(feasible))

    def _feasible_anchors(self, history: ReadingHistory, now: int) -> Set[int]:
        reader_id = history.latest_reader_id
        reader = self.readers[reader_id]
        l_max = self.config.max_speed * (now - history.last_second)
        reach = l_max + reader.activation_range
        distances = self._anchor_distance[reader_id]

        cells = self._candidate_cells(history)
        feasible: Set[int] = set()
        for cell_id in cells:
            for ap_id in self._cell_anchors.get(cell_id, ()):  # noqa: B905
                if distances[ap_id] <= reach:
                    feasible.add(ap_id)
        return feasible

    def _candidate_cells(self, history: ReadingHistory) -> Set[int]:
        """Cells the object may occupy after leaving its last device."""
        reader_id = history.latest_reader_id
        adjacent = self.deployment.cells_adjacent_to(reader_id)
        device_type = self.deployment.device_type(reader_id)
        if device_type is DeviceType.DIRECTED_PARTITIONING:
            partner = self.deployment.directed_partner(reader_id)
            if partner is not None and history.previous_reader_id == partner:
                # Case 3: the pair's reading order implies the object moved
                # from the partner's side to this device's far side.
                partner_cells = self.deployment.cells_adjacent_to(partner)
                forward = adjacent - partner_cells
                if forward:
                    return forward
        return adjacent

    def _uniform(self, anchors: List[int]) -> Dict[int, float]:
        """Area-uniform distribution over a set of feasible anchors."""
        if not anchors:
            return {}
        total = sum(self._anchor_area[ap_id] for ap_id in anchors)
        return {
            ap_id: self._anchor_area[ap_id] / total for ap_id in anchors
        }

    # ------------------------------------------------------------------
    def build_table(
        self,
        candidates: Iterable[str],
        collector: EventDrivenCollector,
        now: int,
    ) -> AnchorObjectTable:
        """Infer every candidate and fill an ``APtoObjHT`` table."""
        table = AnchorObjectTable()
        for object_id in candidates:
            distribution = self.infer(collector.history(object_id), now)
            if distribution:
                table.set_distribution(object_id, distribution)
        return table
