"""Positioning device classification (paper Section 3.3).

The deployment-graph model distinguishes three device types:

* *undirected partitioning device* — separates two (or more) cells but
  cannot tell which way an object crossed;
* *directed partitioning device* — an entry/exit pair whose reading order
  reveals the crossing direction;
* *presence device* — senses objects within its range without
  partitioning the space.

With readers deployed along hallways (this paper's setting) devices are
classified from the cell structure: a reader whose coverage borders two
or more cells partitions them; a reader buried inside a single cell is a
presence device. Directed pairs are declared explicitly by the deployment
(none exist in the paper's evaluation deployment).
"""

from __future__ import annotations

from enum import Enum


class DeviceType(Enum):
    """How a positioning device relates to the cell structure."""

    UNDIRECTED_PARTITIONING = "undirected_partitioning"
    DIRECTED_PARTITIONING = "directed_partitioning"
    PRESENCE = "presence"
