"""Cells and the RFID reader deployment graph (paper Sections 3.3, 2.1).

A *cell* is a maximal connected region of the walking graph that an
object can traverse without being detected by any reader. Cells are
computed by carving every reader's covered intervals out of the graph
edges and taking connected components of what remains. The deployment
graph then connects cells that share a partitioning device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.rfid.reader import RFIDReader
from repro.symbolic.devices import DeviceType

_EPS = 1e-9

Interval = Tuple[float, float]


@dataclass
class Cell:
    """One deployment-graph cell: free intervals of walking-graph edges."""

    cell_id: int
    pieces: Dict[int, List[Interval]] = field(default_factory=dict)

    @property
    def total_length(self) -> float:
        """Summed length of all free intervals in the cell."""
        return sum(hi - lo for intervals in self.pieces.values() for lo, hi in intervals)

    def contains(self, edge_id: int, offset: float) -> bool:
        """True if ``(edge_id, offset)`` lies in this cell."""
        for lo, hi in self.pieces.get(edge_id, ()):  # noqa: B905
            if lo - _EPS <= offset <= hi + _EPS:
                return True
        return False


class DeploymentGraph:
    """Cells plus device classification and adjacency."""

    def __init__(
        self,
        graph: WalkingGraph,
        readers: Sequence[RFIDReader],
        cells: List[Cell],
        reader_cells: Dict[str, Set[int]],
        covered_intervals: Dict[int, List[Tuple[float, float, str]]],
        directed_pairs: Dict[str, str],
    ):
        self.graph = graph
        self.readers = {r.reader_id: r for r in readers}
        self.cells = cells
        self._reader_cells = reader_cells
        self._covered = covered_intervals
        self._directed_pairs = dict(directed_pairs)

        self.nx_graph = nx.MultiGraph()
        for cell in cells:
            self.nx_graph.add_node(cell.cell_id)
        for reader_id, adjacent in reader_cells.items():
            ordered = sorted(adjacent)
            for i, cell_a in enumerate(ordered):
                for cell_b in ordered[i + 1:]:
                    self.nx_graph.add_edge(cell_a, cell_b, device=reader_id)

    # ------------------------------------------------------------------
    def cell_of(self, edge_id: int, offset: float) -> Optional[Cell]:
        """The cell containing a graph position, or None if reader-covered."""
        for cell in self.cells:
            if cell.contains(edge_id, offset):
                return cell
        return None

    def covering_readers(self, edge_id: int, offset: float) -> List[str]:
        """Readers whose activation range covers a graph position."""
        return [
            reader_id
            for lo, hi, reader_id in self._covered.get(edge_id, ())
            if lo - _EPS <= offset <= hi + _EPS
        ]

    def cells_adjacent_to(self, reader_id: str) -> Set[int]:
        """Ids of cells bordering a reader's covered region."""
        return set(self._reader_cells.get(reader_id, set()))

    def device_type(self, reader_id: str) -> DeviceType:
        """Classify a device (paper Section 3.3)."""
        if reader_id in self._directed_pairs:
            return DeviceType.DIRECTED_PARTITIONING
        if len(self._reader_cells.get(reader_id, set())) >= 2:
            return DeviceType.UNDIRECTED_PARTITIONING
        return DeviceType.PRESENCE

    def directed_partner(self, reader_id: str) -> Optional[str]:
        """The paired device of a directed partitioning device."""
        return self._directed_pairs.get(reader_id)


def build_deployment_graph(
    graph: WalkingGraph,
    readers: Sequence[RFIDReader],
    directed_pairs: Optional[Dict[str, str]] = None,
) -> DeploymentGraph:
    """Carve reader coverage out of the graph and build cells."""
    directed_pairs = dict(directed_pairs or {})
    readers = list(readers)

    covered: Dict[int, List[Tuple[float, float, str]]] = {}
    for edge in graph.edges:
        spans: List[Tuple[float, float, str]] = []
        consumed = 0.0
        for seg in edge.path.segments:
            for reader in readers:
                overlap = reader.detection_circle.segment_overlap(seg)
                if overlap is not None and overlap[1] - overlap[0] > _EPS:
                    spans.append(
                        (consumed + overlap[0], consumed + overlap[1], reader.reader_id)
                    )
            consumed += seg.length
        if spans:
            covered[edge.edge_id] = sorted(spans)

    # Free intervals per edge: the complement of merged coverage.
    free: Dict[int, List[Interval]] = {}
    for edge in graph.edges:
        merged = _merge_intervals(
            [(lo, hi) for lo, hi, _ in covered.get(edge.edge_id, [])]
        )
        free[edge.edge_id] = _complement(merged, edge.length)

    # Union-find over free intervals: intervals sharing an uncovered node
    # endpoint belong to one cell.
    interval_ids: Dict[Tuple[int, int], int] = {}
    parents: List[int] = []

    def find(x: int) -> int:
        while parents[x] != x:
            parents[x] = parents[parents[x]]
            x = parents[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parents[rb] = ra

    for edge_id, intervals in free.items():
        for index in range(len(intervals)):
            interval_ids[(edge_id, index)] = len(parents)
            parents.append(len(parents))

    node_touching: Dict[str, List[int]] = {}
    for edge in graph.edges:
        for index, (lo, hi) in enumerate(free[edge.edge_id]):
            uid = interval_ids[(edge.edge_id, index)]
            if lo <= _EPS:
                node_touching.setdefault(edge.node_a, []).append(uid)
            if hi >= edge.length - _EPS:
                node_touching.setdefault(edge.node_b, []).append(uid)
    for uids in node_touching.values():
        for other in uids[1:]:
            union(uids[0], other)

    roots: Dict[int, Cell] = {}
    for (edge_id, index), uid in interval_ids.items():
        root = find(uid)
        if root not in roots:
            roots[root] = Cell(cell_id=len(roots))
        roots[root].pieces.setdefault(edge_id, []).append(free[edge_id][index])
    cells = sorted(roots.values(), key=lambda c: c.cell_id)
    for cell in cells:
        for intervals in cell.pieces.values():
            intervals.sort()

    # Reader -> adjacent cells: cells owning a free interval that borders
    # one of the reader's covered intervals on the same edge.
    cell_lookup: Dict[Tuple[int, int], int] = {}
    for cell in cells:
        for edge_id, intervals in cell.pieces.items():
            for index, _ in enumerate(intervals):
                original_index = free[edge_id].index(intervals[index])
                cell_lookup[(edge_id, original_index)] = cell.cell_id

    reader_cells: Dict[str, Set[int]] = {r.reader_id: set() for r in readers}
    for edge in graph.edges:
        spans = covered.get(edge.edge_id, [])
        intervals = free[edge.edge_id]
        for lo, hi, reader_id in spans:
            for index, (f_lo, f_hi) in enumerate(intervals):
                borders = abs(f_hi - lo) < 1e-6 or abs(f_lo - hi) < 1e-6
                if borders:
                    reader_cells[reader_id].add(cell_lookup[(edge.edge_id, index)])

    return DeploymentGraph(graph, readers, cells, reader_cells, covered, directed_pairs)


def anchor_cells(
    deployment: DeploymentGraph, anchor_index: AnchorIndex
) -> Dict[int, Optional[int]]:
    """Map each anchor to its cell id (None for reader-covered anchors)."""
    mapping: Dict[int, Optional[int]] = {}
    for ap in anchor_index:
        cell = deployment.cell_of(ap.location.edge_id, ap.location.offset)
        mapping[ap.ap_id] = cell.cell_id if cell is not None else None
    return mapping


def _merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Union of possibly-overlapping intervals."""
    merged: List[Interval] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1] + _EPS:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _complement(merged: List[Interval], length: float) -> List[Interval]:
    """The uncovered intervals of ``[0, length]``."""
    result: List[Interval] = []
    cursor = 0.0
    for lo, hi in merged:
        if lo - cursor > _EPS:
            result.append((cursor, lo))
        cursor = max(cursor, hi)
    if length - cursor > _EPS:
        result.append((cursor, length))
    return result
