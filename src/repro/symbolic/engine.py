"""Symbolic model-based query evaluation system.

Mirrors :class:`~repro.queries.engine.IndoorQueryEngine` but performs the
location inference with the symbolic model. Both engines share the same
collector semantics, query-aware pruning, and query evaluation algorithms,
so accuracy differences measured by the experiments come purely from the
inference method — exactly the comparison the paper makes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.collector.collector import EventDrivenCollector
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.floorplan.plan import FloorPlan
from repro.geometry import Point, Rect
from repro.graph.anchors import AnchorIndex, build_anchor_index
from repro.graph.walking_graph import WalkingGraph, build_walking_graph
from repro.queries.engine import EngineSnapshot
from repro.queries.knn_query import evaluate_knn_query
from repro.queries.pruning import QueryAwareOptimizer
from repro.queries.range_query import evaluate_range_query
from repro.queries.types import KNNQuery, KNNResult, RangeQuery, RangeResult
from repro.rfid.reader import RFIDReader
from repro.rfid.readings import RawReading
from repro.symbolic.inference import SymbolicLocationModel


class SymbolicQueryEngine:
    """The baseline system: symbolic inference + shared query algorithms."""

    def __init__(
        self,
        plan: FloorPlan,
        readers: Sequence[RFIDReader],
        tag_to_object: Mapping[str, str],
        config: SimulationConfig = DEFAULT_CONFIG,
        graph: Optional[WalkingGraph] = None,
        anchor_index: Optional[AnchorIndex] = None,
        use_pruning: bool = True,
        directed_pairs: Optional[Dict[str, str]] = None,
    ):
        self.plan = plan
        self.config = config
        self.graph = graph if graph is not None else build_walking_graph(plan)
        self.anchor_index = (
            anchor_index
            if anchor_index is not None
            else build_anchor_index(self.graph, config.anchor_spacing)
        )
        self.readers = {r.reader_id: r for r in readers}
        self.collector = EventDrivenCollector(tag_to_object)
        self.use_pruning = use_pruning
        self.optimizer = QueryAwareOptimizer(
            self.graph, self.anchor_index, self.readers, config
        )
        self.model = SymbolicLocationModel(
            self.graph, self.anchor_index, readers, config, directed_pairs
        )
        self._range_queries: list = []
        self._knn_queries: list = []

    # ------------------------------------------------------------------
    def ingest_second(self, second: int, raw_readings: Sequence[RawReading]) -> None:
        """Feed one second of raw RFID readings into the collector."""
        self.collector.ingest_second(second, raw_readings)

    def register_range_query(self, query: RangeQuery) -> None:
        """Register a range query for the next evaluation round."""
        self._range_queries.append(query)

    def register_knn_query(self, query: KNNQuery) -> None:
        """Register a kNN query for the next evaluation round."""
        self._knn_queries.append(query)

    def clear_queries(self) -> None:
        """Drop all registered queries."""
        self._range_queries.clear()
        self._knn_queries.clear()

    def unregister_query(self, query_id: str) -> bool:
        """Drop one registered query by id (API parity with the PF engine)."""
        for queries in (self._range_queries, self._knn_queries):
            for index, query in enumerate(queries):
                if query.query_id == query_id:
                    del queries[index]
                    return True
        return False

    # ------------------------------------------------------------------
    def evaluate(self, now: int, rng=None) -> EngineSnapshot:
        """Answer every registered query at time ``now``.

        Deterministic; ``rng`` is accepted (and ignored) for API parity
        with :class:`~repro.queries.engine.IndoorQueryEngine`, so callers
        like the continuous-query monitor can drive either engine.
        """
        del rng
        if self.use_pruning:
            candidates = self.optimizer.candidates(
                self.collector, now, self._range_queries, self._knn_queries
            )
        else:
            candidates = set(self.collector.observed_objects())
        table = self.model.build_table(sorted(candidates), self.collector, now)
        snapshot = EngineSnapshot(second=now, candidates=candidates, table=table)
        for query in self._range_queries:
            snapshot.range_results[query.query_id] = evaluate_range_query(
                query, self.plan, self.anchor_index, table
            )
        for query in self._knn_queries:
            snapshot.knn_results[query.query_id] = evaluate_knn_query(
                query, self.graph, self.anchor_index, table
            )
        return snapshot

    # ------------------------------------------------------------------
    def range_query(self, window: Rect, now: int) -> RangeResult:
        """Answer a single ad-hoc range query at time ``now``."""
        query = RangeQuery("adhoc-range", window)
        saved = self._range_queries, self._knn_queries
        self._range_queries, self._knn_queries = [query], []
        try:
            snapshot = self.evaluate(now)
        finally:
            self._range_queries, self._knn_queries = saved
        return snapshot.range_results[query.query_id]

    def knn_query(self, point: Point, k: int, now: int) -> KNNResult:
        """Answer a single ad-hoc kNN query at time ``now``."""
        query = KNNQuery("adhoc-knn", point, k)
        saved = self._range_queries, self._knn_queries
        self._range_queries, self._knn_queries = [], [query]
        try:
            snapshot = self.evaluate(now)
        finally:
            self._range_queries, self._knn_queries = saved
        return snapshot.knn_results[query.query_id]

    def locations_snapshot(self, now: int):
        """Symbolic distributions for all observed objects."""
        return self.model.build_table(
            sorted(self.collector.observed_objects()), self.collector, now
        )
