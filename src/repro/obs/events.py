"""Structured epoch event log: one JSONL record per service tick.

While ``repro serve`` runs, the epoch scheduler can append one JSON line
per processed epoch describing *that epoch's* cost and accuracy-drift
profile — not cumulative totals. The recorder snapshots the metrics
registry each tick and emits deltas, so a record answers "what did tick
N cost and how healthy was the belief state" directly:

* wall time of the whole tick plus per-phase breakdown (predict /
  weight / normalize / resample / the sharded filter step);
* per-shard filter seconds (from the ``service.shard_time`` series,
  one per ``shard`` label);
* queue depth and backpressure stalls, cache hits/misses and hit ratio;
* accuracy-drift proxies: mean particle effective sample size (plus the
  fraction of runs whose ESS collapsed), mean Kalman mixture entropy,
  Kalman hypotheses pruned, depletion reseeds.

The file starts with a header line (``format``/``version``) followed by
one record per epoch. Everything is derived from already-recorded
instruments — the log never touches an RNG, so enabling it cannot
perturb replay results (covered by the serve determinism test).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Dict, IO, List, Mapping, Optional, Tuple

from repro.obs.registry import MetricsRegistry

EVENTS_FORMAT = "repro-epoch-events"
EVENTS_VERSION = 1

#: How many rotated generations ``EpochEventWriter`` keeps by default
#: (``events.jsonl.1`` .. ``events.jsonl.N``; older generations drop).
DEFAULT_KEEP = 3

#: Histogram families reported as per-epoch phase seconds.
PHASE_FAMILIES: Tuple[str, ...] = (
    "filter.predict",
    "filter.weight",
    "filter.normalize",
    "filter.resample",
    "service.filter_tick",
)

_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(item: Mapping[str, object]) -> _SeriesKey:
    labels = item.get("labels")
    if isinstance(labels, dict):
        frozen = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    else:
        frozen = ()
    return (str(item["name"]), frozen)


def _display(key: _SeriesKey) -> str:
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class EpochEventWriter:
    """Append-only JSONL sink with a format header and a write lock.

    With ``rotate_mb`` (or ``rotate_bytes``) set, the log rotates before
    a write would push the current file past the limit: generations
    shift ``path.1 → path.2 → ...`` via atomic :func:`os.replace` (same
    directory, so the rename never crosses filesystems), the live file
    becomes ``path.1``, and a fresh file reopens with a new header line.
    At most ``keep`` rotated generations survive. Rotation holds the
    write lock, so readers tailing the live path only ever see whole
    lines.
    """

    def __init__(
        self,
        path: str,
        fmt: str = EVENTS_FORMAT,
        version: int = EVENTS_VERSION,
        rotate_mb: Optional[float] = None,
        rotate_bytes: Optional[int] = None,
        keep: int = DEFAULT_KEEP,
    ) -> None:
        if rotate_bytes is None and rotate_mb is not None:
            rotate_bytes = int(rotate_mb * 1024 * 1024)
        if rotate_bytes is not None and rotate_bytes <= 0:
            raise ValueError("rotation size must be positive")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.path = path
        self.fmt = fmt
        self.version = version
        self.rotate_bytes = rotate_bytes
        self.keep = keep
        self.rotations = 0
        self._bytes_written = 0
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = None
        self._open_fresh()
        self.records_written = 0

    def _open_fresh(self) -> None:
        self._handle = open(self.path, "w", encoding="utf-8")
        self._bytes_written = 0
        self._write_line({"format": self.fmt, "version": self.version})

    def _write_line(self, record: Mapping[str, object]) -> None:
        handle = self._handle
        if handle is None:
            raise ValueError(f"event log {self.path} is closed")
        line = json.dumps(record, sort_keys=True) + "\n"
        handle.write(line)
        handle.flush()
        self._bytes_written += len(line.encode("utf-8"))

    def _rotate_locked(self) -> None:
        handle = self._handle
        if handle is not None:
            handle.close()
            self._handle = None
        # Drop the oldest generation, then shift the rest up by one.
        oldest = f"{self.path}.{self.keep}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.keep - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._open_fresh()
        self.rotations += 1

    def write(self, record: Mapping[str, object]) -> None:
        """Append one epoch record (thread-safe), rotating if due."""
        with self._lock:
            if (
                self.rotate_bytes is not None
                and self._handle is not None
                and self._bytes_written >= self.rotate_bytes
            ):
                self._rotate_locked()
            self._write_line(record)
            self.records_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EpochEventWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(
    path: str, fmt: str = EVENTS_FORMAT
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Load an event log; returns ``(header, records)`` after validation."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty event log")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != fmt:
        raise ValueError(
            f"{path} is not a {fmt} file (bad header line)"
        )
    records = [json.loads(line) for line in lines[1:]]
    return header, records


def generation_paths(path: str) -> List[str]:
    """Every existing generation of a rotated event log, oldest first.

    The writer shifts generations ``path.1 → path.2 → ...`` on rotation,
    so higher suffixes are older: the returned order is
    ``path.N, ..., path.1, path``. Generations the writer already
    dropped (or that were deleted out-of-band) are simply absent — the
    list only contains files that exist.
    """
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    rotated: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        names = []
    for name in names:
        if not name.startswith(base + "."):
            continue
        suffix = name[len(base) + 1 :]
        if suffix.isdigit():
            rotated.append((int(suffix), os.path.join(directory, name)))
    ordered = [p for _, p in sorted(rotated, reverse=True)]
    if os.path.exists(path):
        ordered.append(path)
    return ordered


def read_all_events(
    path: str, fmt: str = EVENTS_FORMAT
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Load an event log *including rotated generations*, oldest first.

    Every generation carries its own header line (each was opened fresh
    by the writer) and is validated independently; a generation with a
    bad header fails the whole read rather than silently skipping data.
    Missing generations are tolerated — rotation drops the oldest by
    design. Returns ``(headers, records)`` with one header per
    generation read and all records concatenated in time order.
    """
    paths = generation_paths(path)
    if not paths:
        raise FileNotFoundError(f"{path}: no event log generations found")
    headers: List[Dict[str, object]] = []
    records: List[Dict[str, object]] = []
    for generation in paths:
        header, generation_records = read_events(generation, fmt=fmt)
        headers.append(header)
        records.extend(generation_records)
    return headers, records


class EpochEventRecorder:
    """Turns registry state into per-epoch delta records.

    The recorder keeps the previous tick's counter values and histogram
    ``(count, total)`` pairs per series; :meth:`record_epoch` diffs the
    live registry against them, writes one record, and rolls the
    baseline forward. ``writer=None`` skips the JSONL sink but still
    builds and returns records — the alert engine and the ``repro top``
    HTTP source consume them directly.

    ``accuracy_provider`` (optional) supplies extra accuracy fields per
    epoch — the live-simulation occupancy-error ground truth — merged
    into the record's ``accuracy`` section.

    ``analytics_provider`` (optional) supplies the analytics engine's
    per-epoch delta (occupancy snapshot, flow events, completed dwells)
    as the record's ``analytics`` section — what historical window
    queries replay from.
    """

    def __init__(
        self,
        writer: Optional[EpochEventWriter],
        registry: MetricsRegistry,
        accuracy_provider: Optional[
            Callable[[], Mapping[str, object]]
        ] = None,
        analytics_provider: Optional[
            Callable[[], Mapping[str, object]]
        ] = None,
    ) -> None:
        self.writer = writer
        self.registry = registry
        self.accuracy_provider = accuracy_provider
        self.analytics_provider = analytics_provider
        self._prev_counters: Dict[_SeriesKey, int] = {}
        self._prev_histograms: Dict[_SeriesKey, Tuple[int, float]] = {}

    # ------------------------------------------------------------------
    def _diff(
        self, snapshot: Mapping[str, List[Dict[str, object]]]
    ) -> Tuple[Dict[_SeriesKey, int], Dict[_SeriesKey, Tuple[int, float]]]:
        counter_deltas: Dict[_SeriesKey, int] = {}
        for item in snapshot.get("counters", []):
            key = _series_key(item)
            value = int(item.get("value") or 0)
            delta = value - self._prev_counters.get(key, 0)
            self._prev_counters[key] = value
            if delta:
                counter_deltas[key] = delta
        histogram_deltas: Dict[_SeriesKey, Tuple[int, float]] = {}
        for item in snapshot.get("histograms", []):
            key = _series_key(item)
            count = int(item.get("count") or 0)
            total = float(item.get("total") or 0.0)
            prev_count, prev_total = self._prev_histograms.get(key, (0, 0.0))
            self._prev_histograms[key] = (count, total)
            if count != prev_count or total != prev_total:
                histogram_deltas[key] = (count - prev_count, total - prev_total)
        return counter_deltas, histogram_deltas

    @staticmethod
    def _family_mean(
        deltas: Mapping[_SeriesKey, Tuple[int, float]], family: str
    ) -> Optional[float]:
        count = sum(d[0] for key, d in deltas.items() if key[0] == family)
        total = sum(d[1] for key, d in deltas.items() if key[0] == family)
        return total / count if count else None

    @staticmethod
    def _family_counter(
        deltas: Mapping[_SeriesKey, int], family: str
    ) -> int:
        return sum(d for key, d in deltas.items() if key[0] == family)

    # ------------------------------------------------------------------
    def record_epoch(
        self, second: int, tick: int, wall_seconds: float
    ) -> Dict[str, object]:
        """Write (and return) the record for the tick that just finished."""
        snapshot = self.registry.snapshot()
        counter_deltas, histogram_deltas = self._diff(snapshot)

        phases = {
            family: round(
                sum(
                    d[1]
                    for key, d in histogram_deltas.items()
                    if key[0] == family
                ),
                9,
            )
            for family in PHASE_FAMILIES
            if any(key[0] == family for key in histogram_deltas)
        }
        shards = {
            dict(key[1]).get("shard", "?"): round(d[1], 9)
            for key, d in sorted(histogram_deltas.items())
            if key[0] == "service.shard_time"
        }

        gauges = {
            _series_key(item): item.get("value")
            for item in snapshot.get("gauges", [])
        }
        hits = self._family_counter(counter_deltas, "cache.hits")
        misses = self._family_counter(counter_deltas, "cache.misses")
        lookups = hits + misses

        ess_samples = sum(
            d[0]
            for key, d in histogram_deltas.items()
            if key[0] == "filter.ess"
        )
        ess_collapses = self._family_counter(
            counter_deltas, "filter.ess_collapses"
        )

        record: Dict[str, object] = {
            "tick": tick,
            "second": second,
            "wall_seconds": wall_seconds,
            "phases": phases,
            "shards": shards,
            "queue": {
                "depth": gauges.get(("service.queue_depth", ())),
                "backpressure_waits": self._family_counter(
                    counter_deltas, "service.queue_backpressure_waits"
                ),
            },
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_ratio": (hits / lookups) if lookups else None,
            },
            "accuracy": {
                "ess_mean": self._family_mean(histogram_deltas, "filter.ess"),
                # Fraction of this epoch's filter runs whose pre-resample
                # ESS collapsed (below a quarter of the particle budget).
                # The mean alone hides localized collapses: one depleted
                # object among twenty healthy ones barely moves it.
                "ess_collapse_frac": (
                    round(ess_collapses / ess_samples, 9)
                    if ess_samples
                    else None
                ),
                "kalman_entropy_mean": self._family_mean(
                    histogram_deltas, "filter.kalman.entropy"
                ),
                "kalman_pruned": self._family_counter(
                    counter_deltas, "filter.kalman.pruned_hypotheses"
                ),
                "depletion_reseeds": self._family_counter(
                    counter_deltas, "filter.depletion_reseeds"
                ),
            },
            "counters": {
                _display(key): delta
                for key, delta in sorted(counter_deltas.items())
            },
        }
        if self.accuracy_provider is not None:
            accuracy = record["accuracy"]
            assert isinstance(accuracy, dict)
            for key, value in self.accuracy_provider().items():
                accuracy[str(key)] = value
        if self.analytics_provider is not None:
            analytics = self.analytics_provider()
            if analytics:
                record["analytics"] = dict(analytics)
        if self.writer is not None:
            self.writer.write(record)
        return record
