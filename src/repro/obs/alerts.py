"""Online accuracy-drift detection over the epoch event stream.

The epoch event recorder (:mod:`repro.obs.events`) already distills each
service tick into a record of cost and accuracy proxies — pre-resample
effective sample size, Kalman mixture entropy, depletion reseeds,
backpressure, and (when a ``LiveSimSource`` ground truth is wired in)
per-room occupancy error. This module watches those records *online*
and raises alerts when they drift:

* :class:`AlertRule` — one declarative detector: a dotted ``field`` path
  into the epoch record, a ``kind`` (absolute ``above``/``below``
  threshold, or relative ``ewma_drop``/``ewma_rise`` against an
  exponentially weighted baseline of the healthy signal), and a
  severity. Rules are plain data; :func:`builtin_rules` ships the
  defaults and callers can register their own.
* :class:`AlertEngine` — feeds every epoch record through every rule,
  tracks firing/resolved transitions, and surfaces them three ways:
  labeled ``obs.alerts_fired{rule,severity}`` counters plus an
  ``obs.alerts_active`` gauge in the metrics registry, JSONL alert
  events (``repro-alert-events``), and :meth:`AlertEngine.summary` for
  the ``/alerts`` endpoint on the ``MetricsServer``.

EWMA semantics: the baseline updates only on *non-breaching* epochs.
During a breach the baseline is frozen, so a sustained collapse (ESS
pinned near zero after a reader outage) keeps firing instead of being
absorbed into a new "normal". Rules need ``min_samples`` healthy epochs
before they can fire, which keeps cold-start noise out.

Everything here is pure arithmetic over already-recorded state — no
clocks, no RNG — so enabling alerting cannot perturb replay results.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.obs.events import EpochEventWriter

ALERTS_FORMAT = "repro-alert-events"
ALERTS_VERSION = 1

_KINDS = ("above", "below", "ewma_drop", "ewma_rise")
_SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative drift detector over epoch records.

    ``field`` is a dotted path into the record (``accuracy.ess_mean``);
    epochs where the path resolves to ``None`` or is absent are skipped.

    Kinds:

    * ``above`` / ``below`` — absolute comparison against ``threshold``.
    * ``ewma_drop`` — fire when the value falls below ``factor`` times
      the EWMA baseline of healthy epochs (``factor=0.5``: value halved).
    * ``ewma_rise`` — fire when the value exceeds ``factor`` times the
      baseline (``factor=2.0``: value doubled).
    """

    name: str
    field: str
    kind: str
    severity: str = "warning"
    threshold: float = 0.0
    factor: float = 0.5
    alpha: float = 0.2
    min_samples: int = 5
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"rule {self.name}: unknown kind {self.kind!r}")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"rule {self.name}: unknown severity {self.severity!r}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"rule {self.name}: alpha must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError(f"rule {self.name}: min_samples must be >= 1")
        if self.kind in ("ewma_drop", "ewma_rise") and self.factor <= 0.0:
            raise ValueError(f"rule {self.name}: factor must be positive")


def builtin_rules() -> List[AlertRule]:
    """The default detector set (every signal the event log already has)."""
    return [
        AlertRule(
            name="ess_collapse",
            field="accuracy.ess_mean",
            kind="ewma_drop",
            factor=0.5,
            alpha=0.2,
            min_samples=5,
            severity="critical",
            description=(
                "pre-resample effective sample size fell below half its "
                "recent baseline: the particle cloud no longer matches "
                "the observations (reader outage, kidnapped object)"
            ),
        ),
        AlertRule(
            name="entropy_spike",
            field="accuracy.kalman_entropy_mean",
            kind="ewma_rise",
            factor=2.0,
            alpha=0.2,
            min_samples=3,
            severity="warning",
            description=(
                "Kalman mixture entropy doubled against baseline: "
                "hypothesis mass is spreading instead of localizing"
            ),
        ),
        AlertRule(
            name="depletion_surge",
            field="accuracy.depletion_reseeds",
            kind="above",
            threshold=0.0,
            min_samples=1,
            severity="warning",
            description=(
                "particle depletion reseeds happened this epoch: "
                "the filter lost all plausible hypotheses at least once"
            ),
        ),
        AlertRule(
            name="occupancy_error",
            field="accuracy.occupancy_error_mean",
            kind="above",
            threshold=1.0,
            min_samples=1,
            severity="warning",
            description=(
                "mean per-room occupancy error vs simulation ground "
                "truth exceeds one object"
            ),
        ),
        AlertRule(
            name="epoch_stall",
            field="wall_seconds",
            kind="ewma_rise",
            factor=3.0,
            alpha=0.2,
            min_samples=5,
            severity="warning",
            description="epoch wall time tripled against its baseline",
        ),
        AlertRule(
            name="backpressure",
            field="queue.backpressure_waits",
            kind="above",
            threshold=0.0,
            min_samples=1,
            severity="info",
            description="ingest queue hit backpressure this epoch",
        ),
    ]


def gateway_rules() -> List[AlertRule]:
    """SLO detectors over the gateway coordinator's per-tick records.

    The coordinator feeds one record per collected tick (see
    ``GatewayCoordinator._observe_slo``) with a ``gateway.*`` sub-tree:
    barrier-wait statistics, dead/shed bookkeeping, and the worker-side
    accuracy deltas piggybacked on tick replies.
    """
    return [
        AlertRule(
            name="partition_straggler",
            field="gateway.straggler_ratio",
            kind="above",
            threshold=4.0,
            min_samples=3,
            severity="warning",
            description=(
                "one partition's barrier wait dominates the tick: its "
                "worker is at least 4x slower than the fleet mean"
            ),
        ),
        AlertRule(
            name="shed_surge",
            field="gateway.sheds",
            kind="above",
            threshold=0.0,
            min_samples=1,
            severity="warning",
            description=(
                "sub-ticks were load-shed since the previous tick: a "
                "partition queue overflowed under the shed policy"
            ),
        ),
        AlertRule(
            name="barrier_stall",
            field="gateway.barrier_wait_max",
            kind="ewma_rise",
            factor=3.0,
            alpha=0.2,
            min_samples=5,
            severity="warning",
            description=(
                "the slowest partition's barrier wait tripled against "
                "its baseline: fan-in is stalling on a worker"
            ),
        ),
        AlertRule(
            name="partition_dead",
            field="gateway.missing_partitions",
            kind="above",
            threshold=0.0,
            min_samples=1,
            severity="critical",
            description=(
                "a partition contributed no sub-snapshot to this tick: "
                "its worker is dead and the merge is partial"
            ),
        ),
        AlertRule(
            name="worker_ess_collapse",
            field="gateway.worker_ess_collapses",
            kind="above",
            threshold=0.0,
            min_samples=1,
            severity="critical",
            description=(
                "a worker reported effective-sample-size collapses this "
                "tick: some partition's particle clouds degenerated"
            ),
        ),
    ]


def _resolve(record: Mapping[str, object], path: str) -> Optional[float]:
    node: object = record
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


@dataclass
class _RuleState:
    ewma: Optional[float] = None
    samples: int = 0
    firing: bool = False
    fired_count: int = 0
    last_value: Optional[float] = None
    last_tick: Optional[int] = None
    fired_tick: Optional[int] = None


class AlertEngine:
    """Evaluates every rule against every epoch record (thread-safe)."""

    def __init__(
        self,
        rules: Optional[Sequence[AlertRule]] = None,
        writer: Optional[EpochEventWriter] = None,
    ) -> None:
        selected = list(builtin_rules() if rules is None else rules)
        names = [rule.name for rule in selected]
        if len(names) != len(set(names)):
            raise ValueError("duplicate alert rule names")
        self.rules: Tuple[AlertRule, ...] = tuple(selected)
        self.writer = writer
        self._lock = threading.Lock()
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        self.events_emitted = 0

    # ------------------------------------------------------------------
    def _evaluate(
        self, rule: AlertRule, state: _RuleState, value: float
    ) -> Tuple[bool, Optional[float]]:
        """Return ``(breaching, baseline_used)`` for one observation."""
        if rule.kind == "above":
            state.samples += 1
            return (
                state.samples >= rule.min_samples and value > rule.threshold,
                None,
            )
        if rule.kind == "below":
            state.samples += 1
            return (
                state.samples >= rule.min_samples and value < rule.threshold,
                None,
            )
        # EWMA kinds: warm the baseline on healthy epochs only.
        baseline = state.ewma
        armed = baseline is not None and state.samples >= rule.min_samples
        if rule.kind == "ewma_drop":
            breach = armed and baseline is not None and value < rule.factor * baseline
        else:
            breach = armed and baseline is not None and value > rule.factor * baseline
        if not breach:
            state.ewma = (
                value
                if baseline is None
                else (1.0 - rule.alpha) * baseline + rule.alpha * value
            )
            state.samples += 1
        return breach, baseline

    def _emit(
        self,
        rule: AlertRule,
        state: _RuleState,
        action: str,
        value: float,
        baseline: Optional[float],
        tick: int,
        second: object,
    ) -> Dict[str, object]:
        event: Dict[str, object] = {
            "action": action,
            "rule": rule.name,
            "severity": rule.severity,
            "field": rule.field,
            "kind": rule.kind,
            "tick": tick,
            "second": second,
            "value": round(value, 9),
            "baseline": None if baseline is None else round(baseline, 9),
            "description": rule.description,
        }
        if action == "fired":
            obs.add(
                "obs.alerts_fired",
                labels={"rule": rule.name, "severity": rule.severity},
            )
        if self.writer is not None:
            self.writer.write(event)
        self.events_emitted += 1
        return event

    # ------------------------------------------------------------------
    def observe_epoch(
        self, record: Mapping[str, object]
    ) -> List[Dict[str, object]]:
        """Feed one epoch record through every rule; returns transitions."""
        tick = int(str(record.get("tick") or 0))
        second = record.get("second")
        transitions: List[Dict[str, object]] = []
        with self._lock:
            for rule in self.rules:
                value = _resolve(record, rule.field)
                if value is None:
                    continue
                state = self._states[rule.name]
                breaching, baseline = self._evaluate(rule, state, value)
                state.last_value = value
                state.last_tick = tick
                if breaching and not state.firing:
                    state.firing = True
                    state.fired_count += 1
                    state.fired_tick = tick
                    transitions.append(
                        self._emit(
                            rule, state, "fired", value, baseline, tick, second
                        )
                    )
                elif not breaching and state.firing:
                    state.firing = False
                    state.fired_tick = None
                    transitions.append(
                        self._emit(
                            rule, state, "resolved", value, baseline, tick, second
                        )
                    )
            active = sum(1 for s in self._states.values() if s.firing)
        obs.gauge_set("obs.alerts_active", active)
        return transitions

    # ------------------------------------------------------------------
    def active(self) -> List[Dict[str, object]]:
        """Currently-firing alerts (for dashboards and ``/alerts``)."""
        with self._lock:
            out = []
            for rule in self.rules:
                state = self._states[rule.name]
                if state.firing:
                    out.append(
                        {
                            "rule": rule.name,
                            "severity": rule.severity,
                            "field": rule.field,
                            "since_tick": state.fired_tick,
                            "value": state.last_value,
                            "description": rule.description,
                        }
                    )
            return out

    def summary(self) -> Dict[str, object]:
        """The full ``/alerts`` document: active alerts + per-rule state."""
        with self._lock:
            rules = []
            for rule in self.rules:
                state = self._states[rule.name]
                rules.append(
                    {
                        "rule": rule.name,
                        "severity": rule.severity,
                        "field": rule.field,
                        "kind": rule.kind,
                        "firing": state.firing,
                        "fired_count": state.fired_count,
                        "baseline": (
                            None if state.ewma is None else round(state.ewma, 9)
                        ),
                        "last_value": state.last_value,
                        "last_tick": state.last_tick,
                    }
                )
            active = [r for r in rules if r["firing"]]
        return {
            "format": ALERTS_FORMAT,
            "version": ALERTS_VERSION,
            "active_count": len(active),
            "rules": rules,
        }
