"""Process-local metrics registry.

Four instrument kinds, chosen to cover everything the evaluation in the
paper's Section 5 reports:

* :class:`Counter` — monotonically increasing event counts (readings
  ingested, candidates pruned, cache hits);
* :class:`Gauge` — last-write-wins scalars (objects currently tracked);
* :class:`Histogram` — value distributions with quantile summaries
  (per-phase latencies, readings per second);
* :class:`Timer` — a histogram of elapsed seconds fed by a context
  manager, plus a :class:`Stopwatch` for accumulating coarse sections.

Everything is plain Python with no dependencies. Time is read through an
injectable monotonic clock so tests (and the determinism suite) can drive
instruments with a fake clock and get byte-stable output.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

Clock = Callable[[], float]

#: Default histogram sample retention; past this the histogram keeps
#: count/sum/min/max exact but stops storing samples for quantiles.
DEFAULT_MAX_SAMPLES = 65536


class Counter:
    """A monotonically increasing count. Safe to increment from worker
    threads (the service's sharded filter executor)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot."""
        return {"name": self.name, "type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = float(value)

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot."""
        return {"name": self.name, "type": "gauge", "value": self.value}


class Histogram:
    """A distribution of observed values with on-demand quantiles.

    Samples are retained (up to ``max_samples``) so quantiles are exact,
    not sketched; past the cap the histogram degrades gracefully —
    ``count``/``total``/``min``/``max`` stay exact, quantiles are computed
    over the retained prefix, and ``dropped`` records how many samples
    were not retained. Retention is deterministic (first-come) so two
    identical runs summarize identically.
    """

    __slots__ = ("name", "count", "total", "min", "max", "dropped",
                 "max_samples", "_samples", "_lock")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.dropped = 0
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample (thread-safe)."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self.dropped += 1

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean, or None when empty."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0 <= q <= 1) over retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot with standard quantile summaries."""
        return {
            "name": self.name,
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "dropped": self.dropped,
        }


class Timer:
    """A histogram of elapsed seconds, fed by ``with`` blocks.

    Timers nest naturally — each ``with`` records its own elapsed span::

        with registry.timer("filter.run"):
            with registry.timer("filter.predict"):
                ...

    Re-entrant use of one timer object is also safe: each ``with`` keeps
    its start time on a stack.
    """

    __slots__ = ("histogram", "_clock", "_starts")

    def __init__(self, histogram: Histogram, clock: Clock) -> None:
        self.histogram = histogram
        self._clock = clock
        self._starts: List[float] = []

    @property
    def name(self) -> str:
        """The underlying histogram's name."""
        return self.histogram.name

    def __enter__(self) -> "Timer":
        self._starts.append(self._clock())
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.histogram.observe(self._clock() - self._starts.pop())


class Stopwatch:
    """Accumulates wall-clock over several ``with`` sections.

    The benchmark ablations time only the query-evaluation part of each
    round; a stopwatch sums those sections without polluting a shared
    registry::

        sw = Stopwatch()
        for round in rounds:
            advance_world()
            with sw:
                evaluate()
        print(sw.total)
    """

    __slots__ = ("total", "laps", "_clock", "_starts")

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self.total = 0.0
        self.laps = 0
        self._clock = clock
        self._starts: List[float] = []

    def __enter__(self) -> "Stopwatch":
        self._starts.append(self._clock())
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.total += self._clock() - self._starts.pop()
        self.laps += 1


class MetricsRegistry:
    """Name-keyed store of counters, gauges, histograms, and timers.

    Instruments are created on first use and shared thereafter; names are
    dot-separated (``"filter.predict"``, ``"cache.hits"``). One registry
    instance is process-local state — the :mod:`repro.obs` facade owns a
    default instance, but tests may build private ones.
    """

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self._clock = clock
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    # ------------------------------------------------------------------
    @property
    def clock(self) -> Clock:
        """The monotonic clock used by timers."""
        return self._clock

    def set_clock(self, clock: Clock) -> None:
        """Swap the clock (existing timers pick it up on next use)."""
        self._clock = clock
        for timer in self._timers.values():
            timer._clock = clock

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create a histogram."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def timer(self, name: str) -> Timer:
        """Get or create a timer (backed by the same-named histogram)."""
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(
                self.histogram(name), self._clock
            )
        return instrument

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every instrument (used between runs and by tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """All instruments, serialized, sorted by name."""
        return {
            "counters": [
                self._counters[k].as_dict() for k in sorted(self._counters)
            ],
            "gauges": [
                self._gauges[k].as_dict() for k in sorted(self._gauges)
            ],
            "histograms": [
                self._histograms[k].as_dict() for k in sorted(self._histograms)
            ],
        }
