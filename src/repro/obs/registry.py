"""Process-local metrics registry.

Four instrument kinds, chosen to cover everything the evaluation in the
paper's Section 5 reports:

* :class:`Counter` — monotonically increasing event counts (readings
  ingested, candidates pruned, cache hits);
* :class:`Gauge` — last-write-wins scalars (objects currently tracked);
* :class:`Histogram` — value distributions with quantile summaries
  (per-phase latencies, readings per second);
* :class:`Timer` — a histogram of elapsed seconds fed by a context
  manager, plus a :class:`Stopwatch` for accumulating coarse sections.

Every instrument may carry a small **frozen label set** — a mapping of
dimension names to values fixed at creation (``shard="3"``,
``backend="kalman"``, ``query="knn"``). Each distinct ``(name, labels)``
pair is its own series, aggregated independently in the registry and
exported side by side in snapshots; the Prometheus exposition
(:mod:`repro.obs.expo`) renders the labels natively.

Everything is plain Python with no dependencies. Time is read through an
injectable monotonic clock so tests (and the determinism suite) can drive
instruments with a fake clock and get byte-stable output. Instruments are
safe to create and record into from shard worker threads: series creation
is guarded by a registry lock, per-instrument mutation by the instrument's
own lock, and timer start stacks are thread-local.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

Clock = Callable[[], float]

#: A frozen, canonical label set: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram sample retention; past this the histogram keeps
#: count/sum/min/max exact but stops storing samples for quantiles.
DEFAULT_MAX_SAMPLES = 65536

#: Label dimensionality bound: labels are for small frozen sets (shard,
#: backend, query kind), not for unbounded values like object ids.
MAX_LABELS = 8

_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def freeze_labels(labels: Optional[Mapping[str, object]]) -> LabelKey:
    """Canonicalize a label mapping into a sorted, hashable key.

    Label names must be valid identifiers (``[a-zA-Z_][a-zA-Z0-9_]*`` —
    the Prometheus label grammar); values are coerced to ``str``. At most
    :data:`MAX_LABELS` dimensions per series.
    """
    if not labels:
        return ()
    if len(labels) > MAX_LABELS:
        raise ValueError(
            f"label set has {len(labels)} dimensions (max {MAX_LABELS}); "
            "labels are for small frozen dimensions, not per-object values"
        )
    frozen = []
    for key in sorted(labels):
        if not _LABEL_NAME.match(key):
            raise ValueError(f"invalid label name {key!r}")
        frozen.append((key, str(labels[key])))
    return tuple(frozen)


class Counter:
    """A monotonically increasing count. Safe to increment from worker
    threads (the service's sharded filter executor)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels: Dict[str, str] = dict(labels)
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot."""
        data: Dict[str, object] = {
            "name": self.name, "type": "counter", "value": self.value,
        }
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels: Dict[str, str] = dict(labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = float(value)

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot."""
        data: Dict[str, object] = {
            "name": self.name, "type": "gauge", "value": self.value,
        }
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class Histogram:
    """A distribution of observed values with on-demand quantiles.

    Samples are retained (up to ``max_samples``) so quantiles are exact,
    not sketched; past the cap the histogram degrades gracefully —
    ``count``/``total``/``min``/``max`` stay exact, quantiles are computed
    over the retained prefix, and ``dropped`` records how many samples
    were not retained. The export carries that count as
    ``dropped_samples`` plus a ``quantiles_estimated`` flag, so a capped
    histogram's quantiles are honestly labeled as estimates instead of
    silently passing for exact. Retention is deterministic (first-come)
    so two identical runs summarize identically.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "dropped",
                 "max_samples", "_samples", "_lock")

    def __init__(
        self,
        name: str,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        labels: LabelKey = (),
    ) -> None:
        self.name = name
        self.labels: Dict[str, str] = dict(labels)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.dropped = 0
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample (thread-safe)."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self.dropped += 1

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean, or None when empty."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0 <= q <= 1) over retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot with standard quantile summaries."""
        data: Dict[str, object] = {
            "name": self.name,
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "dropped_samples": self.dropped,
            "quantiles_estimated": self.dropped > 0,
        }
        if self.labels:
            data["labels"] = dict(self.labels)
        return data


class Timer:
    """A histogram of elapsed seconds, fed by ``with`` blocks.

    Timers nest naturally — each ``with`` records its own elapsed span::

        with registry.timer("filter.run"):
            with registry.timer("filter.predict"):
                ...

    Re-entrant use of one timer object is also safe: each ``with`` keeps
    its start time on a stack. The stack is thread-local, so shard worker
    threads timing the same phase concurrently pair their own start and
    stop instead of popping each other's.
    """

    __slots__ = ("histogram", "_clock", "_local")

    def __init__(self, histogram: Histogram, clock: Clock) -> None:
        self.histogram = histogram
        self._clock = clock
        self._local = threading.local()

    @property
    def name(self) -> str:
        """The underlying histogram's name."""
        return self.histogram.name

    @property
    def _starts(self) -> List[float]:
        starts: Optional[List[float]] = getattr(self._local, "starts", None)
        if starts is None:
            starts = []
            self._local.starts = starts
        return starts

    def __enter__(self) -> "Timer":
        self._starts.append(self._clock())
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.histogram.observe(self._clock() - self._starts.pop())


class Stopwatch:
    """Accumulates wall-clock over several ``with`` sections.

    The benchmark ablations time only the query-evaluation part of each
    round; a stopwatch sums those sections without polluting a shared
    registry::

        sw = Stopwatch()
        for round in rounds:
            advance_world()
            with sw:
                evaluate()
        print(sw.total)
    """

    __slots__ = ("total", "laps", "_clock", "_starts")

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self.total = 0.0
        self.laps = 0
        self._clock = clock
        self._starts: List[float] = []

    def __enter__(self) -> "Stopwatch":
        self._starts.append(self._clock())
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.total += self._clock() - self._starts.pop()
        self.laps += 1


class MetricsRegistry:
    """Name-and-label-keyed store of counters, gauges, histograms, timers.

    Instruments are created on first use and shared thereafter; names are
    dot-separated (``"filter.predict"``, ``"cache.hits"``), and an
    optional label mapping selects one series of a metric family
    (``counter("filter.runs", {"backend": "kalman"})``). One registry
    instance is process-local state — the :mod:`repro.obs` facade owns a
    default instance, but tests may build private ones. Series creation
    is lock-guarded so shard worker threads may create labeled series
    concurrently.
    """

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        self._timers: Dict[Tuple[str, LabelKey], Timer] = {}

    # ------------------------------------------------------------------
    @property
    def clock(self) -> Clock:
        """The monotonic clock used by timers."""
        return self._clock

    def set_clock(self, clock: Clock) -> None:
        """Swap the clock (existing timers pick it up on next use)."""
        with self._lock:
            self._clock = clock
            for timer in self._timers.values():
                timer._clock = clock

    # ------------------------------------------------------------------
    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Counter:
        """Get or create one counter series."""
        key = (name, freeze_labels(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(key)
                if instrument is None:
                    instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Gauge:
        """Get or create one gauge series."""
        key = (name, freeze_labels(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(key)
                if instrument is None:
                    instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Histogram:
        """Get or create one histogram series."""
        key = (name, freeze_labels(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(key)
                if instrument is None:
                    instrument = self._histograms[key] = Histogram(
                        name, labels=key[1]
                    )
        return instrument

    def timer(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Timer:
        """Get or create a timer (backed by the same-named histogram series)."""
        key = (name, freeze_labels(labels))
        instrument = self._timers.get(key)
        if instrument is None:
            histogram = self.histogram(name, labels)
            with self._lock:
                instrument = self._timers.get(key)
                if instrument is None:
                    instrument = self._timers[key] = Timer(
                        histogram, self._clock
                    )
        return instrument

    # ------------------------------------------------------------------
    def counter_total(self, name: str) -> int:
        """Sum of one counter family across all of its label sets."""
        with self._lock:
            series = [c for (n, _), c in self._counters.items() if n == name]
        return sum(c.value for c in series)

    def series_of(self, name: str) -> List[Dict[str, object]]:
        """Every series of one metric family, serialized, label-sorted."""
        with self._lock:
            found = [
                (key, instrument.as_dict())
                for mapping in (self._counters, self._gauges, self._histograms)
                for key, instrument in mapping.items()
                if key[0] == name
            ]
        return [data for _, data in sorted(found, key=lambda item: item[0])]

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every instrument (used between runs and by tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._timers.clear()

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """All instruments, serialized, sorted by name then label set."""
        with self._lock:
            counters = [self._counters[k] for k in sorted(self._counters)]
            gauges = [self._gauges[k] for k in sorted(self._gauges)]
            histograms = [self._histograms[k] for k in sorted(self._histograms)]
        return {
            "counters": [c.as_dict() for c in counters],
            "gauges": [g.as_dict() for g in gauges],
            "histograms": [h.as_dict() for h in histograms],
        }
