"""``repro top`` — a live ANSI terminal dashboard for a running service.

Three layers, each separately testable:

* **State** — :class:`TopState` is one display-ready sample: the latest
  health document, a bounded window of recent epoch records (the same
  shape :class:`~repro.obs.events.EpochEventRecorder` writes), and the
  alert-engine summary.
* **Sources** — :class:`HttpTopSource` polls a running ``repro serve
  --metrics-port`` endpoint (``/healthz`` + ``/snapshot`` + ``/alerts``)
  and synthesizes per-interval epoch records by diffing successive
  snapshots through a writer-less ``EpochEventRecorder``;
  :class:`EventLogTopSource` tails a ``--events`` JSONL file (plus an
  optional alert log), which also works post-mortem.
* **Loop** — :class:`TopLoop` redraws :func:`render_top` every interval.
  The clock and sleep are injected (the CLI passes the real ones), so
  the loop is deterministic under test and this module never reads wall
  time itself — the same clock-hygiene rule (CLK) the rest of
  ``repro.obs`` follows.

Rendering is pure string-building over plain dicts: ANSI is limited to
the clear-screen prefix the loop prepends, so frames are assertable in
tests and the output degrades gracefully when piped to a file.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.obs.events import EpochEventRecorder, read_events

#: Unicode block elements used for sparklines, thinnest to tallest.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: ANSI: clear screen + home cursor (prepended to every live frame).
ANSI_CLEAR = "\x1b[2J\x1b[H"

#: How many recent epoch records a source retains for trend displays.
WINDOW = 60


def sparkline(values: Sequence[Optional[float]], width: int = 30) -> str:
    """Render the last ``width`` values as unicode block elements."""
    tail = [v for v in values if v is not None][-width:]
    if not tail:
        return ""
    low, high = min(tail), max(tail)
    span = high - low
    if span <= 0:
        return SPARK_BLOCKS[0] * len(tail)
    out = []
    top = len(SPARK_BLOCKS) - 1
    for value in tail:
        out.append(SPARK_BLOCKS[round((value - low) / span * top)])
    return "".join(out)


def bar(fraction: float, width: int = 20) -> str:
    """A filled proportional bar, clamped to [0, 1]."""
    clamped = min(max(fraction, 0.0), 1.0)
    filled = round(clamped * width)
    return "#" * filled + "." * (width - filled)


class TopState:
    """One display-ready dashboard sample."""

    def __init__(
        self,
        health: Optional[Mapping[str, object]] = None,
        records: Optional[Sequence[Mapping[str, object]]] = None,
        alerts: Optional[Mapping[str, object]] = None,
        analytics: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.health: Dict[str, object] = dict(health or {})
        self.records: List[Dict[str, object]] = [dict(r) for r in records or []]
        self.alerts: Dict[str, object] = dict(alerts or {})
        self.analytics: Dict[str, object] = dict(analytics or {})

    @property
    def last_record(self) -> Optional[Dict[str, object]]:
        return self.records[-1] if self.records else None

    def accuracy_series(self, field: str) -> List[Optional[float]]:
        out: List[Optional[float]] = []
        for record in self.records:
            accuracy = record.get("accuracy")
            value = (
                accuracy.get(field) if isinstance(accuracy, Mapping) else None
            )
            out.append(float(str(value)) if isinstance(value, (int, float)) else None)
        return out

    def wall_series(self) -> List[Optional[float]]:
        out: List[Optional[float]] = []
        for record in self.records:
            value = record.get("wall_seconds")
            out.append(float(str(value)) if isinstance(value, (int, float)) else None)
        return out


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(value: object, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _active_alerts(alerts: Mapping[str, object]) -> List[Dict[str, object]]:
    rules = alerts.get("rules")
    if not isinstance(rules, list):
        return []
    return [r for r in rules if isinstance(r, dict) and r.get("firing")]


def _analytics_lines(analytics: Mapping[str, object]) -> List[str]:
    """The occupancy/top-k panel (graceful when data hasn't arrived)."""
    flows = analytics.get("flows")
    flow_events = (
        flows.get("events") if isinstance(flows, Mapping) else None
    )
    lines = [
        f"analytics  epochs={_fmt(analytics.get('epochs'))}   "
        f"updates={_fmt(analytics.get('updates'))}   "
        f"objects={_fmt(analytics.get('objects'))}   "
        f"flow events={_fmt(flow_events)}"
    ]
    top = analytics.get("top_regions")
    rows = [
        row
        for row in (top if isinstance(top, list) else [])
        if isinstance(row, Mapping)
        and isinstance(row.get("expected"), (int, float))
    ]
    if rows:
        peak = max(float(str(row["expected"])) for row in rows)
        for row in rows[:5]:
            expected = float(str(row["expected"]))
            fraction = expected / peak if peak > 0 else 0.0
            lines.append(
                f"  {str(row.get('region')):<14} {bar(fraction)} "
                f"{expected:.2f}"
            )
    else:
        lines.append("  (no occupancy data yet)")
    return lines


def _gateway_lines(health: Mapping[str, object]) -> List[str]:
    """The per-partition panel for a gateway health document."""
    workers = health.get("workers")
    if not isinstance(workers, list) or not workers:
        return []
    lines = [
        f"gateway  partitions={_fmt(health.get('partitions'))}   "
        f"dead={_fmt(health.get('dead_partitions'))}   "
        f"pending={_fmt(health.get('pending_ticks'))}"
    ]
    for worker in workers:
        if not isinstance(worker, Mapping):
            continue
        state = "alive" if worker.get("alive") else "DEAD"
        lines.append(
            f"  p{_fmt(worker.get('partition'))}  {state:<5} "
            f"queue={_fmt(worker.get('queue_depth'))} "
            f"sheds={_fmt(worker.get('sheds'))} "
            f"second={_fmt(worker.get('last_second'))} "
            f"age={_fmt(worker.get('last_tick_age'))}"
        )
    tenants = health.get("tenants")
    if isinstance(tenants, Mapping) and tenants:
        rendered = "  ".join(
            f"{tenant_id}:{_fmt(record.get('ticks'))}t"
            + (
                f"/{_fmt(record.get('partial_ticks'))}p"
                if isinstance(record, Mapping) and record.get("partial_ticks")
                else ""
            )
            for tenant_id, record in sorted(tenants.items())
            if isinstance(record, Mapping)
        )
        lines.append(f"  tenants  {rendered}")
    return lines


def render_top(state: TopState, width: int = 80) -> str:
    """Render one dashboard frame (no ANSI, pure text)."""
    health = state.health
    lines: List[str] = []
    rule = "-" * width
    status = str(health.get("status", "?"))
    lines.append(
        f"repro top   status={status}   ticks={_fmt(health.get('ticks'))}   "
        f"second={_fmt(health.get('last_second'))}   "
        f"backend={_fmt(health.get('filter_backend'))}"
    )
    lines.append(
        f"queue {_fmt(health.get('queue_depth'))}/"
        f"{_fmt(health.get('queue_capacity'))}   "
        f"objects={_fmt(health.get('tracked_objects'))}   "
        f"queries={_fmt(health.get('standing_queries'))}   "
        f"checkpoints={_fmt(health.get('checkpoints_written'))}"
    )
    gateway = _gateway_lines(health)
    if gateway:
        lines.append(rule)
        lines.extend(gateway)
    lines.append(rule)

    walls = state.wall_series()
    tail = [w for w in walls if w is not None]
    if tail:
        mean = sum(tail) / len(tail)
        rate = (1.0 / mean) if mean > 0 else float("inf")
        lines.append(
            f"epoch wall  {sparkline(walls)}  "
            f"last={_fmt(tail[-1], 4)}s mean={_fmt(mean, 4)}s "
            f"(~{_fmt(rate, 1)} ticks/s)"
        )

    last = state.last_record
    if last is not None:
        phases = last.get("phases")
        if isinstance(phases, Mapping) and phases:
            numeric = {
                str(k): float(str(v))
                for k, v in phases.items()
                if isinstance(v, (int, float))
            }
            top_value = max(numeric.values()) if numeric else 0.0
            lines.append("phase seconds (last epoch)")
            for name in sorted(numeric, key=lambda n: -numeric[n]):
                fraction = numeric[name] / top_value if top_value > 0 else 0.0
                lines.append(
                    f"  {name:<24} {bar(fraction)} {_fmt(numeric[name], 6)}"
                )
        shards = last.get("shards")
        if isinstance(shards, Mapping) and shards:
            rendered = "  ".join(
                f"s{shard}={_fmt(float(str(seconds)), 5)}"
                for shard, seconds in sorted(shards.items())
                if isinstance(seconds, (int, float))
            )
            lines.append(f"shard seconds  {rendered}")
        cache = last.get("cache")
        if isinstance(cache, Mapping):
            lines.append(
                f"cache  hits={_fmt(cache.get('hits'))} "
                f"misses={_fmt(cache.get('misses'))} "
                f"ratio={_fmt(cache.get('hit_ratio'))}"
            )

    ess = state.accuracy_series("ess_mean")
    if any(v is not None for v in ess):
        tail_ess = [v for v in ess if v is not None]
        lines.append(
            f"ESS         {sparkline(ess)}  last={_fmt(tail_ess[-1], 2)}"
        )
    entropy = state.accuracy_series("kalman_entropy_mean")
    if any(v is not None for v in entropy):
        tail_entropy = [v for v in entropy if v is not None]
        lines.append(
            f"entropy     {sparkline(entropy)}  "
            f"last={_fmt(tail_entropy[-1], 3)}"
        )
    occupancy = state.accuracy_series("occupancy_error_mean")
    if any(v is not None for v in occupancy):
        tail_occ = [v for v in occupancy if v is not None]
        lines.append(
            f"room error  {sparkline(occupancy)}  "
            f"last={_fmt(tail_occ[-1], 3)}"
        )

    if state.analytics:
        lines.append(rule)
        lines.extend(_analytics_lines(state.analytics))

    lines.append(rule)
    firing = _active_alerts(state.alerts)
    if firing:
        lines.append(f"ALERTS ({len(firing)} active)")
        for alert in firing:
            lines.append(
                f"  [{_fmt(alert.get('severity'))}] "
                f"{_fmt(alert.get('rule'))}: "
                f"{_fmt(alert.get('field'))}={_fmt(alert.get('last_value'))}"
            )
    elif state.alerts:
        lines.append("alerts: none firing")
    return "\n".join(line[:width] for line in lines) + "\n"


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------
class _RemoteRegistry:
    """Duck-typed stand-in for ``MetricsRegistry.snapshot`` over HTTP.

    The HTTP source fetches ``/snapshot`` and stores the ``metrics``
    section here; the writer-less ``EpochEventRecorder`` then diffs
    successive fetches exactly as it would a live registry.
    """

    def __init__(self) -> None:
        self.metrics: Dict[str, List[Dict[str, object]]] = {}

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        return self.metrics


class HttpTopSource:
    """Polls a running ``MetricsServer`` for dashboard state."""

    def __init__(self, base_url: str, timeout: float = 5.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._registry = _RemoteRegistry()
        # The recorder only ever calls registry.snapshot(), which the
        # remote stand-in provides.
        self._recorder = EpochEventRecorder(
            writer=None,
            registry=self._registry,  # type: ignore[arg-type]
        )
        self._records: List[Dict[str, object]] = []
        self._last_ticks: Optional[int] = None
        self._primed = False

    def _get_json(self, path: str) -> Optional[Dict[str, object]]:
        url = f"{self.base_url}{path}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                data = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            try:
                data = json.loads(exc.read().decode("utf-8"))
            except Exception:
                return None
        except (urllib.error.URLError, OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def poll(self) -> TopState:
        """Fetch health/snapshot/alerts/analytics, fold in one delta record."""
        health = self._get_json("/healthz") or {"status": "unreachable"}
        alerts = self._get_json("/alerts") or {}
        analytics = self._get_json("/analytics") or {}
        snapshot = self._get_json("/snapshot") or {}
        metrics = snapshot.get("metrics")
        ticks_obj = health.get("ticks")
        ticks = int(str(ticks_obj)) if isinstance(ticks_obj, int) else None
        if isinstance(metrics, dict):
            self._registry.metrics = {
                str(k): v for k, v in metrics.items() if isinstance(v, list)
            }
            advanced = (
                ticks is not None
                and self._last_ticks is not None
                and ticks > self._last_ticks
            )
            wall = health.get("last_tick_seconds")
            record = self._recorder.record_epoch(
                second=int(str(health.get("last_second") or 0) or 0),
                tick=ticks if ticks is not None else 0,
                wall_seconds=(
                    float(str(wall)) if isinstance(wall, (int, float)) else 0.0
                ),
            )
            # The first fetch only primes the delta baseline; afterwards
            # keep records for intervals where the service ticked.
            if self._primed and advanced:
                self._records.append(record)
                self._records = self._records[-WINDOW:]
            self._primed = True
        if ticks is not None:
            self._last_ticks = ticks
        return TopState(
            health=health,
            records=self._records,
            alerts=alerts,
            analytics=analytics,
        )


class EventLogTopSource:
    """Tails a ``--events`` JSONL file (works live and post-mortem)."""

    def __init__(
        self, events_path: str, alerts_path: Optional[str] = None
    ) -> None:
        self.events_path = events_path
        self.alerts_path = alerts_path

    def poll(self) -> TopState:
        try:
            _, records = read_events(self.events_path)
        except (OSError, ValueError):
            records = []
        records = records[-WINDOW:]
        last = records[-1] if records else {}
        queue = last.get("queue") if isinstance(last, dict) else None
        health: Dict[str, object] = {
            "status": "log",
            "ticks": last.get("tick") if isinstance(last, dict) else None,
            "last_second": last.get("second") if isinstance(last, dict) else None,
            "queue_depth": (
                queue.get("depth") if isinstance(queue, Mapping) else None
            ),
        }
        alerts: Dict[str, object] = {}
        if self.alerts_path is not None:
            alerts = self._fold_alerts()
        return TopState(
            health=health,
            records=records,
            alerts=alerts,
            analytics=self._fold_analytics(records),
        )

    @staticmethod
    def _fold_analytics(
        records: Sequence[Mapping[str, object]],
    ) -> Dict[str, object]:
        """Synthesize a summary-shaped analytics dict from log records.

        Occupancy comes from the latest record's ``analytics`` section
        (it is a level, not a delta); flow events sum over the retained
        window. Records without analytics sections yield an empty dict,
        which renders as no panel at all.
        """
        sections = [
            record["analytics"]
            for record in records
            if isinstance(record.get("analytics"), Mapping)
        ]
        if not sections:
            return {}
        last = sections[-1]
        assert isinstance(last, Mapping)
        occupancy = last.get("occupancy")
        top: List[Dict[str, object]] = []
        if isinstance(occupancy, Mapping):
            ranked = sorted(
                (
                    (str(region), float(str(occupancy[region])))
                    for region in occupancy
                    if isinstance(occupancy[region], (int, float))
                ),
                key=lambda item: (-item[1], item[0]),
            )
            top = [
                {"region": region, "expected": expected}
                for region, expected in ranked[:5]
            ]
        flow_events = 0
        for section in sections:
            assert isinstance(section, Mapping)
            flows = section.get("flows")
            if isinstance(flows, Mapping):
                flow_events += sum(
                    int(str(flows[edge]))
                    for edge in flows
                    if isinstance(flows[edge], int)
                )
        updates = last.get("updates")
        return {
            "epochs": len(sections),
            "updates": updates,
            "objects": None,
            "flows": {"events": flow_events},
            "top_regions": top,
        }

    def _fold_alerts(self) -> Dict[str, object]:
        """Replay fired/resolved transitions into a summary-shaped dict."""
        assert self.alerts_path is not None
        try:
            _, events = read_events(
                self.alerts_path, fmt="repro-alert-events"
            )
        except (OSError, ValueError):
            return {}
        states: Dict[str, Dict[str, object]] = {}
        for event in events:
            rule = str(event.get("rule"))
            entry = states.setdefault(
                rule,
                {
                    "rule": rule,
                    "severity": event.get("severity"),
                    "field": event.get("field"),
                    "firing": False,
                    "fired_count": 0,
                    "last_value": None,
                    "last_tick": None,
                },
            )
            entry["firing"] = event.get("action") == "fired"
            if event.get("action") == "fired":
                entry["fired_count"] = int(str(entry["fired_count"])) + 1
            entry["last_value"] = event.get("value")
            entry["last_tick"] = event.get("tick")
        rules = [states[rule] for rule in sorted(states)]
        return {
            "active_count": sum(1 for r in rules if r["firing"]),
            "rules": rules,
        }


# ----------------------------------------------------------------------
# the loop
# ----------------------------------------------------------------------
class TopLoop:
    """Redraws the dashboard every ``interval`` seconds.

    ``clock``/``sleep`` are injected by the caller (the CLI passes
    ``time.monotonic``/``time.sleep``); this module never reads wall
    time itself. ``frames`` bounds the run (``repro top --frames N`` /
    ``--once``); ``key_reader`` (returning one pending keypress or
    ``None``) maps ``q`` to quit and ``p`` to pause.
    """

    def __init__(
        self,
        source: object,
        clock: Callable[[], float],
        sleep: Callable[[float], None],
        interval: float = 1.0,
        width: int = 100,
        emit: Optional[Callable[[str], None]] = None,
        frames: Optional[int] = None,
        key_reader: Optional[Callable[[], Optional[str]]] = None,
        use_ansi: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.source = source
        self.clock = clock
        self.sleep = sleep
        self.interval = interval
        self.width = width
        self.emit = emit if emit is not None else self._default_emit
        self.frames = frames
        self.key_reader = key_reader
        self.use_ansi = use_ansi
        self.frames_rendered = 0
        self.paused = False

    @staticmethod
    def _default_emit(text: str) -> None:
        print(text, end="", flush=True)

    def _poll(self) -> TopState:
        poll = getattr(self.source, "poll")
        state = poll()
        assert isinstance(state, TopState)
        return state

    def render_frame(self) -> str:
        """One frame's full text (clear-prefix included when live)."""
        frame = render_top(self._poll(), width=self.width)
        return (ANSI_CLEAR + frame) if self.use_ansi else frame

    def run(self) -> int:
        """Loop until ``frames`` frames or a ``q`` keypress; returns frames."""
        while self.frames is None or self.frames_rendered < self.frames:
            if self.key_reader is not None:
                key = self.key_reader()
                if key == "q":
                    break
                if key == "p":
                    self.paused = not self.paused
            if not self.paused:
                self.emit(self.render_frame())
                self.frames_rendered += 1
            if self.frames is not None and self.frames_rendered >= self.frames:
                break
            self.sleep(self.interval)
        return self.frames_rendered
