"""Deterministic span-anchored cost-attribution profiler.

The tracer (:mod:`repro.obs.tracer`) already records every instrumented
section as a span with start/end/parent/thread. This module turns one
canonical ``repro-trace`` snapshot into *attribution*: where the run's
time actually went, as

* **per-phase self/cumulative tables** — ``self`` is a span's duration
  minus its direct children (time spent in that phase's own code),
  ``cum`` counts each phase once per stack occurrence (recursive
  re-entries are not double-counted);
* **per-stack-path self time** — the classic collapsed-stack form
  (``a;b;c <microseconds>``) consumed by flamegraph tooling;
* **speedscope JSON** — an evented profile per thread, loadable at
  https://www.speedscope.app (``repro profile --speedscope`` /
  ``repro stats --flamegraph``);
* **per-shard / per-backend / per-object-bucket rollups** — read from
  the labeled metric series and ``filter.run`` span attributes, the
  decision record for where vectorization effort should go.

Determinism: attribution is pure arithmetic over the snapshot, and
``repro profile`` (without ``--wall``) drives the pipeline under a
:class:`CountingClock` — an injectable clock whose k-th read returns
``k * step``. Span durations then measure *instrumented operations*,
not machine speed, so two same-seed runs produce bit-identical tables
and exports on any machine. ``--wall`` swaps the real clock back in for
genuine wall-time attribution.

The profiler adds **zero** new hot-path call sites: it consumes spans
the pipeline already emits behind the ``obs.enabled()`` guard, so the
disabled-path overhead budget (``repro bench`` ``profiler_overhead``
workload, ≤1%) is unchanged.
"""

from __future__ import annotations

import json
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

PROFILE_FORMAT = "repro-profile"
PROFILE_VERSION = 1

#: Object ids are hashed into this many buckets for the per-object
#: rollup (a bounded dimension, mirroring the labels rule: attribution
#: tables never carry unbounded per-object cardinality).
OBJECT_BUCKETS = 8

#: Speedscope's published schema URL (part of the file format).
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


class CountingClock:
    """Deterministic injectable clock: the k-th read returns ``k * step``.

    Installed via ``obs.set_clock`` by ``repro profile``; every span
    boundary and timer read advances it by exactly one step, so elapsed
    "time" counts instrumented operations. Thread-safe, though the
    deterministic profile workload is single-threaded by construction
    (thread interleaving would otherwise perturb read order).
    """

    __slots__ = ("step", "_reads", "_lock")

    def __init__(self, step: float = 1e-6) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        self.step = step
        self._reads = 0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            self._reads += 1
            return self._reads * self.step

    @property
    def reads(self) -> int:
        """How many times the clock has been read."""
        with self._lock:
            return self._reads


def object_bucket(object_id: str, buckets: int = OBJECT_BUCKETS) -> int:
    """Stable object-id bucket (CRC32, same family as shard assignment)."""
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    return zlib.crc32(object_id.encode("utf-8")) % buckets


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
_SpanDict = Mapping[str, object]


def _finished_spans(snapshot: Mapping[str, object]) -> List[Dict[str, object]]:
    trace = snapshot.get("trace")
    if not isinstance(trace, Mapping):
        return []
    spans = trace.get("spans")
    if not isinstance(spans, list):
        return []
    out: List[Dict[str, object]] = []
    for span in spans:
        if isinstance(span, dict) and span.get("end") is not None:
            out.append(span)
    return out


def _duration(span: _SpanDict) -> float:
    end = span.get("end")
    start = span.get("start")
    if not isinstance(end, (int, float)) or not isinstance(start, (int, float)):
        return 0.0
    return float(end) - float(start)


def _round(value: float) -> float:
    # Nine decimals: microsecond-stable, and identical across runs for
    # the deterministic clock (whose values are exact small multiples).
    return round(value, 9)


@dataclass(frozen=True)
class PhaseRow:
    """One phase's attribution: calls, self seconds, cumulative seconds."""

    phase: str
    calls: int
    self_seconds: float
    cum_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "calls": self.calls,
            "self_seconds": _round(self.self_seconds),
            "cum_seconds": _round(self.cum_seconds),
        }


@dataclass(frozen=True)
class PathRow:
    """Self time attributed to one full stack path (``a;b;c``)."""

    path: str
    calls: int
    self_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "calls": self.calls,
            "self_seconds": _round(self.self_seconds),
        }


@dataclass
class AttributionProfile:
    """The full attribution document built from one trace snapshot."""

    clock: str  # "deterministic" | "wall"
    total_seconds: float
    phases: List[PhaseRow]
    timers: List[Dict[str, object]]
    paths: List[PathRow]
    shards: List[Dict[str, object]]
    backends: List[Dict[str, object]]
    object_buckets: List[Dict[str, object]]
    dropped_spans: int
    meta: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": PROFILE_FORMAT,
            "version": PROFILE_VERSION,
            "clock": self.clock,
            "meta": dict(self.meta),
            "total_seconds": _round(self.total_seconds),
            "phases": [row.as_dict() for row in self.phases],
            "timers": list(self.timers),
            "paths": [row.as_dict() for row in self.paths],
            "shards": list(self.shards),
            "backends": list(self.backends),
            "object_buckets": list(self.object_buckets),
            "dropped_spans": self.dropped_spans,
        }


def _metric_series(
    snapshot: Mapping[str, object], kind: str, name: str
) -> List[Dict[str, object]]:
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, Mapping):
        return []
    entries = metrics.get(kind)
    if not isinstance(entries, list):
        return []
    return [e for e in entries if isinstance(e, dict) and e.get("name") == name]


def _labels_of(item: Mapping[str, object]) -> Dict[str, str]:
    labels = item.get("labels")
    if isinstance(labels, dict):
        return {str(k): str(v) for k, v in labels.items()}
    return {}


def _shard_rows(snapshot: Mapping[str, object]) -> List[Dict[str, object]]:
    rows = []
    for item in _metric_series(snapshot, "histograms", "service.shard_time"):
        labels = _labels_of(item)
        rows.append(
            {
                "shard": labels.get("shard", "?"),
                "ticks": int(str(item.get("count") or 0)),
                "seconds": _round(float(str(item.get("total") or 0.0))),
            }
        )
    rows.sort(key=lambda r: str(r["shard"]))
    return rows


def _backend_rows(snapshot: Mapping[str, object]) -> List[Dict[str, object]]:
    seconds: Dict[str, float] = {}
    ticks: Dict[str, int] = {}
    for item in _metric_series(snapshot, "histograms", "service.filter_tick"):
        backend = _labels_of(item).get("backend", "?")
        seconds[backend] = seconds.get(backend, 0.0) + float(str(item.get("total") or 0.0))
        ticks[backend] = ticks.get(backend, 0) + int(str(item.get("count") or 0))
    runs: Dict[str, int] = {}
    for item in _metric_series(snapshot, "counters", "filter.backend_runs"):
        backend = _labels_of(item).get("backend", "?")
        runs[backend] = runs.get(backend, 0) + int(str(item.get("value") or 0))
    rows = []
    for backend in sorted(set(seconds) | set(runs)):
        rows.append(
            {
                "backend": backend,
                "filter_runs": runs.get(backend, 0),
                "ticks": ticks.get(backend, 0),
                "seconds": _round(seconds.get(backend, 0.0)),
            }
        )
    return rows


def _timer_rows(snapshot: Mapping[str, object]) -> List[Dict[str, object]]:
    """Every timer/histogram family as ``(series, count, total)`` rows.

    This is where the filter's inner phases live — ``filter.predict`` /
    ``weight`` / ``normalize`` / ``resample``, sensing likelihood,
    cache, snapshotting — as timer histograms rather than spans.
    """
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, Mapping):
        return []
    entries = metrics.get("histograms")
    if not isinstance(entries, list):
        return []
    rows = []
    for item in entries:
        if not isinstance(item, dict):
            continue
        labels = _labels_of(item)
        series = str(item.get("name"))
        if labels:
            rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            series = f"{series}{{{rendered}}}"
        rows.append(
            {
                "series": series,
                "count": int(str(item.get("count") or 0)),
                "total_seconds": _round(float(str(item.get("total") or 0.0))),
            }
        )
    rows.sort(
        key=lambda r: (-float(str(r["total_seconds"])), str(r["series"]))
    )
    return rows


def _bucket_rows(spans: List[Dict[str, object]]) -> List[Dict[str, object]]:
    seconds = [0.0] * OBJECT_BUCKETS
    calls = [0] * OBJECT_BUCKETS
    objects: List[set] = [set() for _ in range(OBJECT_BUCKETS)]
    seen = False
    for span in spans:
        if span.get("name") != "filter.run":
            continue
        attrs = span.get("attrs")
        if not isinstance(attrs, dict):
            continue
        object_id = attrs.get("object")
        if object_id is None:
            continue
        seen = True
        bucket = object_bucket(str(object_id))
        seconds[bucket] += _duration(span)
        calls[bucket] += 1
        objects[bucket].add(str(object_id))
    if not seen:
        return []
    return [
        {
            "bucket": index,
            "objects": len(objects[index]),
            "filter_runs": calls[index],
            "seconds": _round(seconds[index]),
        }
        for index in range(OBJECT_BUCKETS)
        if calls[index]
    ]


def build_profile(
    snapshot: Mapping[str, object],
    clock: str = "wall",
    meta: Optional[Mapping[str, object]] = None,
) -> AttributionProfile:
    """Compute the attribution document for one ``repro-trace`` snapshot."""
    spans = _finished_spans(snapshot)
    by_index: Dict[int, Dict[str, object]] = {}
    for span in spans:
        by_index[int(str(span.get("index") or 0))] = span

    children_seconds: Dict[int, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            key = int(str(parent))
            children_seconds[key] = children_seconds.get(key, 0.0) + _duration(span)

    def ancestor_has_name(span: _SpanDict, name: object) -> bool:
        parent = span.get("parent")
        hops = 0
        while parent is not None and hops < 10_000:
            above = by_index.get(int(str(parent)))
            if above is None:
                return False
            if above.get("name") == name:
                return True
            parent = above.get("parent")
            hops += 1
        return False

    def path_of(span: _SpanDict) -> str:
        names = [str(span.get("name"))]
        parent = span.get("parent")
        hops = 0
        while parent is not None and hops < 10_000:
            above = by_index.get(int(str(parent)))
            if above is None:
                break
            names.append(str(above.get("name")))
            parent = above.get("parent")
            hops += 1
        return ";".join(reversed(names))

    phase_calls: Dict[str, int] = {}
    phase_self: Dict[str, float] = {}
    phase_cum: Dict[str, float] = {}
    path_calls: Dict[str, int] = {}
    path_self: Dict[str, float] = {}
    total_self = 0.0
    for span in spans:
        name = str(span.get("name"))
        duration = _duration(span)
        index = int(str(span.get("index") or 0))
        self_seconds = max(duration - children_seconds.get(index, 0.0), 0.0)
        total_self += self_seconds
        phase_calls[name] = phase_calls.get(name, 0) + 1
        phase_self[name] = phase_self.get(name, 0.0) + self_seconds
        if not ancestor_has_name(span, span.get("name")):
            phase_cum[name] = phase_cum.get(name, 0.0) + duration
        path = path_of(span)
        path_calls[path] = path_calls.get(path, 0) + 1
        path_self[path] = path_self.get(path, 0.0) + self_seconds

    phases = [
        PhaseRow(
            phase=name,
            calls=phase_calls[name],
            self_seconds=phase_self[name],
            cum_seconds=phase_cum.get(name, 0.0),
        )
        for name in phase_calls
    ]
    phases.sort(key=lambda row: (-row.self_seconds, row.phase))
    paths = [
        PathRow(path=path, calls=path_calls[path], self_seconds=path_self[path])
        for path in path_calls
    ]
    paths.sort(key=lambda row: (-row.self_seconds, row.path))

    trace = snapshot.get("trace")
    dropped = 0
    if isinstance(trace, Mapping):
        dropped = int(str(trace.get("dropped") or 0))

    return AttributionProfile(
        clock=clock,
        total_seconds=total_self,
        phases=phases,
        timers=_timer_rows(snapshot),
        paths=paths,
        shards=_shard_rows(snapshot),
        backends=_backend_rows(snapshot),
        object_buckets=_bucket_rows(spans),
        dropped_spans=dropped,
        meta=dict(meta) if meta else {},
    )


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------
def to_collapsed(profile: AttributionProfile) -> str:
    """Collapsed-stack text: one ``path <self-microseconds>`` line per path.

    The standard input format of flamegraph.pl / inferno; values are
    integer microseconds so the output is byte-stable.
    """
    lines = [
        f"{row.path} {int(round(row.self_seconds * 1e6))}"
        for row in sorted(profile.paths, key=lambda r: r.path)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(
    snapshot: Mapping[str, object], name: str = "repro profile"
) -> Dict[str, object]:
    """Convert one trace snapshot into a speedscope evented document.

    One profile per recorded thread; frames are shared and indexed in
    first-appearance order (span-index order, so same-seed runs emit
    byte-identical documents).
    """
    spans = _finished_spans(snapshot)
    spans.sort(key=lambda s: int(str(s.get("index") or 0)))
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    for span in spans:
        span_name = str(span.get("name"))
        if span_name not in frame_index:
            frame_index[span_name] = len(frames)
            frames.append({"name": span_name})

    by_thread: Dict[int, List[Dict[str, object]]] = {}
    for span in spans:
        by_thread.setdefault(int(str(span.get("thread") or 0)), []).append(span)

    profiles: List[Dict[str, object]] = []
    for thread in sorted(by_thread):
        thread_spans = by_thread[thread]
        events: List[Tuple[float, int, int, Dict[str, object]]] = []
        for span in thread_spans:
            start = float(str(span.get("start") or 0.0))
            end = float(str(span.get("end") or 0.0))
            depth = int(str(span.get("depth") or 0))
            frame = frame_index[str(span.get("name"))]
            # Sort keys: at equal timestamps a close precedes an open;
            # deeper frames close first and open last, preserving nesting.
            events.append((start, 1, depth, {"type": "O", "frame": frame, "at": start}))
            events.append((end, 0, -depth, {"type": "C", "frame": frame, "at": end}))
        events.sort(key=lambda item: (item[0], item[1], item[2]))
        start_value = min((e[0] for e in events), default=0.0)
        end_value = max((e[0] for e in events), default=0.0)
        profiles.append(
            {
                "type": "evented",
                "name": f"thread {thread}",
                "unit": "seconds",
                "startValue": start_value,
                "endValue": end_value,
                "events": [e[3] for e in events],
            }
        )

    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro-profiler",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def write_profile(profile: AttributionProfile, path: str) -> None:
    """Write the attribution document as stable, sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_profile(path: str) -> Dict[str, object]:
    """Read and validate an attribution document."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != PROFILE_FORMAT:
        raise ValueError(f"{path} is not a {PROFILE_FORMAT} file")
    return data


def write_speedscope(
    snapshot: Mapping[str, object], path: str, name: str = "repro profile"
) -> None:
    """Write the speedscope export of one trace snapshot."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_speedscope(snapshot, name=name), handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_collapsed(profile: AttributionProfile, path: str) -> None:
    """Write the collapsed-stack export."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_collapsed(profile))


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def _fmt_seconds(value: float, deterministic: bool) -> str:
    if deterministic:
        # Deterministic units are exact multiples of the clock step;
        # render as integer microsteps, the honest unit.
        return str(int(round(value * 1e6)))
    return f"{value:.6f}"


def render_attribution(profile: AttributionProfile, top: int = 12) -> str:
    """Human-readable attribution report (what ``repro profile`` prints)."""
    deterministic = profile.clock == "deterministic"
    unit = "units" if deterministic else "seconds"
    total = profile.total_seconds or 1.0
    lines: List[str] = []
    lines.append(
        f"phase attribution (clock={profile.clock}, "
        f"total {_fmt_seconds(profile.total_seconds, deterministic)} {unit})"
    )
    header = f"{'phase':<28} {'calls':>8} {'self':>12} {'cum':>12} {'self%':>7} {'cum%':>7}"
    lines.append(header)
    for row in profile.phases[:top]:
        lines.append(
            f"{row.phase:<28} {row.calls:>8} "
            f"{_fmt_seconds(row.self_seconds, deterministic):>12} "
            f"{_fmt_seconds(row.cum_seconds, deterministic):>12} "
            f"{100.0 * row.self_seconds / total:>6.1f}% "
            f"{100.0 * row.cum_seconds / total:>6.1f}%"
        )
    if len(profile.phases) > top:
        lines.append(f"... {len(profile.phases) - top} more phases")

    if profile.timers:
        lines.append("")
        lines.append("timer histograms (inner phases: predict/weight/... )")
        for row in profile.timers[:top]:
            lines.append(
                f"  {str(row['series']):<32} "
                f"{row['count']:>8} x  "
                f"{_fmt_seconds(float(str(row['total_seconds'])), deterministic)} {unit}"
            )
        if len(profile.timers) > top:
            lines.append(f"  ... {len(profile.timers) - top} more series")

    if profile.shards:
        lines.append("")
        lines.append("per-shard filter time")
        for shard in profile.shards:
            lines.append(
                f"  shard {shard['shard']}: "
                f"{_fmt_seconds(float(str(shard['seconds'])), deterministic)} {unit} "
                f"over {shard['ticks']} ticks"
            )
    if profile.backends:
        lines.append("")
        lines.append("per-backend filter time")
        for backend in profile.backends:
            lines.append(
                f"  {backend['backend']}: "
                f"{_fmt_seconds(float(str(backend['seconds'])), deterministic)} {unit}, "
                f"{backend['filter_runs']} filter runs"
            )
    if profile.object_buckets:
        lines.append("")
        lines.append(f"object buckets (crc32 % {OBJECT_BUCKETS})")
        for bucket in profile.object_buckets:
            lines.append(
                f"  bucket {bucket['bucket']}: {bucket['objects']} objects, "
                f"{bucket['filter_runs']} runs, "
                f"{_fmt_seconds(float(str(bucket['seconds'])), deterministic)} {unit}"
            )
    if profile.dropped_spans:
        lines.append("")
        lines.append(
            f"warning: {profile.dropped_spans} spans past the retention cap; "
            "attribution covers the retained prefix (aggregates stay exact)"
        )
    return "\n".join(lines)
