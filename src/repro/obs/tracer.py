"""Span-based tracing.

A span is one named, timed section of work; spans nest, forming a tree
per top-level operation (one ``engine.evaluate`` span contains one
``engine.filter`` span, which contains one ``filter.run`` span per
candidate object, ...).

The tracer keeps finished spans in a bounded list (dropping the newest
past ``max_spans``, with an exact drop count) and *always* folds every
span's duration into a per-name aggregate — so even a capped trace
reports exact per-phase totals. Like the registry, it reads time through
an injectable monotonic clock.

Nesting is tracked per thread: each thread has its own open-span stack,
so spans opened inside a worker pool (the service's sharded filter
executor) form their own trees instead of corrupting the main thread's.
Finished spans and aggregates land in shared, lock-guarded storage.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

Clock = Callable[[], float]

#: Default retained-span cap; aggregates stay exact past it.
DEFAULT_MAX_SPANS = 100_000


@dataclass
class Span:
    """One finished (or in-flight) traced section."""

    name: str
    start: float
    depth: int
    parent: Optional[int]  # index of the parent span, None at the root
    index: int
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    #: Normalized thread id: 0 for the first thread that opened a span,
    #: 1 for the second, ... Stable within a run; used by the Chrome
    #: trace export to place spans on per-thread tracks.
    thread: int = 0

    @property
    def duration(self) -> Optional[float]:
        """Elapsed seconds, or None while still open."""
        return None if self.end is None else self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "index": self.index,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


@dataclass
class SpanAggregate:
    """Exact per-name rollup, maintained even when spans are dropped."""

    name: str
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def add(self, duration: float) -> None:
        """Fold one finished span in."""
        self.count += 1
        self.total += duration
        if self.min is None or duration < self.min:
            self.min = duration
        if self.max is None or duration > self.max:
            self.max = duration

    @property
    def mean(self) -> Optional[float]:
        """Mean duration, or None when empty."""
        return self.total / self.count if self.count else None

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot."""
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        """The underlying span record (attrs may be added while open)."""
        return self._span

    def set_attr(self, key: str, value: object) -> "ActiveSpan":
        """Attach an attribute to the span."""
        self._span.attrs[key] = value
        return self

    def __enter__(self) -> "ActiveSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self._span)


class Tracer:
    """Collects a tree of timed spans."""

    def __init__(
        self,
        clock: Clock = time.perf_counter,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self._clock = clock
        self.max_spans = max_spans
        self._spans: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._aggregates: Dict[str, SpanAggregate] = {}
        self._next_index = 0
        self._next_thread = 0
        self.dropped = 0

    @property
    def _stack(self) -> List[Span]:
        stack: Optional[List[Span]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def _thread_id(self) -> int:
        """This thread's normalized id (assigned in first-span order)."""
        assigned: Optional[int] = getattr(self._local, "thread_id", None)
        if assigned is None:
            with self._lock:
                assigned = self._next_thread
                self._next_thread += 1
            self._local.thread_id = assigned
        return assigned

    # ------------------------------------------------------------------
    @property
    def clock(self) -> Clock:
        """The monotonic clock spans read."""
        return self._clock

    def set_clock(self, clock: Clock) -> None:
        """Swap the clock."""
        self._clock = clock

    @property
    def depth(self) -> int:
        """Current nesting depth in this thread (0 outside any span)."""
        return len(self._stack)

    def current(self) -> Optional[Span]:
        """This thread's innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> ActiveSpan:
        """Open a span; use as a context manager."""
        stack = self._stack
        parent = stack[-1].index if stack else None
        with self._lock:
            index = self._next_index
            self._next_index += 1
        span = Span(
            name=name,
            start=self._clock(),
            depth=len(stack),
            parent=parent,
            index=index,
            attrs=dict(attrs),
            thread=self._thread_id,
        )
        stack.append(span)
        return ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        stack = self._stack
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order; "
                f"open stack: {[s.name for s in stack]}"
            )
        stack.pop()
        end = self._clock()
        span.end = end
        with self._lock:
            aggregate = self._aggregates.get(span.name)
            if aggregate is None:
                aggregate = self._aggregates[span.name] = SpanAggregate(span.name)
            aggregate.add(end - span.start)
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
            else:
                self.dropped += 1

    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """All retained finished spans, in finish order."""
        with self._lock:
            return list(self._spans)

    def aggregates(self) -> Dict[str, SpanAggregate]:
        """Exact per-name rollups (never affected by the span cap)."""
        with self._lock:
            return dict(self._aggregates)

    def clear(self) -> None:
        """Drop retained spans and aggregates; open spans survive."""
        with self._lock:
            self._spans.clear()
            self._aggregates.clear()
            self.dropped = 0

    def snapshot(self) -> Dict[str, object]:
        """Serializable snapshot: spans plus per-name aggregates."""
        with self._lock:
            return {
                "spans": [s.as_dict() for s in self._spans],
                "aggregates": [
                    self._aggregates[k].as_dict()
                    for k in sorted(self._aggregates)
                ],
                "dropped": self.dropped,
            }
