"""repro.obs — zero-dependency observability for the query pipeline.

A process-local metrics registry (counters, gauges, histograms, timers)
plus a span tracer, behind a module-level on/off switch:

* **Off (the default)** every entry point is a guarded no-op: counters
  return immediately, ``span()``/``timer()`` hand back a shared do-nothing
  context manager, and instrumented call sites cost one boolean check.
  The layer is safe to leave compiled into every hot path.
* **On** (:func:`enable`, ``SimulationConfig(observability=True)``, or the
  CLI's ``--trace``) the pipeline records per-phase filter timings,
  pruning-effectiveness counters, cache hit rates, and collector
  throughput into one registry/tracer pair, exportable via
  :mod:`repro.obs.report`.

Observability never touches any random number generator, so enabling it
cannot perturb simulation results (see ``tests/test_determinism.py``).
Time is read through an injectable monotonic clock (:func:`set_clock`)
so exports can be made byte-stable in tests.

Typical use::

    from repro import obs

    obs.enable()
    sim.run_for(120)
    sim.pf_engine.evaluate(sim.now, rng=sim.pf_rng)
    print(obs.render_summary())
    obs.export_json("trace.json")
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, Mapping, Optional, TypeVar, Union, cast

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    Timer,
)
from repro.obs.tracer import ActiveSpan, Span, SpanAggregate, Tracer

Clock = Callable[[], float]

__all__ = [
    "ActiveSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanAggregate",
    "Stopwatch",
    "Timer",
    "Tracer",
    "add",
    "disable",
    "enable",
    "enabled",
    "export_chrome_trace",
    "export_csv",
    "export_json",
    "gauge_set",
    "observe",
    "registry",
    "render_prometheus",
    "render_summary",
    "reset",
    "set_clock",
    "snapshot",
    "span",
    "stopwatch",
    "timed",
    "timer",
    "tracer",
]


class _NoopContext:
    """Shared do-nothing stand-in for spans and timers when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attr(self, key: str, value: object) -> "_NoopContext":
        return self


_NOOP = _NoopContext()

_enabled: bool = False
_clock: Clock = time.perf_counter
_registry = MetricsRegistry(_clock)
_tracer = Tracer(_clock)


# ----------------------------------------------------------------------
# switch
# ----------------------------------------------------------------------
def enabled() -> bool:
    """Fast guard used by every instrumented call site."""
    return _enabled


def enable(fresh: bool = True) -> None:
    """Turn recording on (``fresh=True`` also clears prior data)."""
    global _enabled
    if fresh:
        reset()
    _enabled = True


def disable() -> None:
    """Turn recording off; recorded data stays readable."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop all recorded metrics and spans (the switch is untouched)."""
    _registry.clear()
    _tracer.clear()


def set_clock(clock: Clock) -> None:
    """Inject a monotonic clock (tests pass a fake for stable output)."""
    global _clock
    _clock = clock
    _registry.set_clock(clock)
    _tracer.set_clock(clock)


# ----------------------------------------------------------------------
# access
# ----------------------------------------------------------------------
def registry() -> MetricsRegistry:
    """The process-local registry (recorded into only while enabled)."""
    return _registry


def tracer() -> Tracer:
    """The process-local tracer (recorded into only while enabled)."""
    return _tracer


# ----------------------------------------------------------------------
# recording shortcuts (all no-ops while disabled)
# ----------------------------------------------------------------------
Labels = Optional[Mapping[str, object]]


def add(name: str, amount: int = 1, labels: Labels = None) -> None:
    """Increment a counter (one series per distinct label set)."""
    if _enabled:
        _registry.counter(name, labels).inc(amount)


def gauge_set(name: str, value: float, labels: Labels = None) -> None:
    """Set a gauge."""
    if _enabled:
        _registry.gauge(name, labels).set(value)


def observe(name: str, value: float, labels: Labels = None) -> None:
    """Record one histogram sample."""
    if _enabled:
        _registry.histogram(name, labels).observe(value)


def timer(name: str, labels: Labels = None) -> Union[Timer, _NoopContext]:
    """A ``with``-able timer feeding the same-named histogram series."""
    if _enabled:
        return _registry.timer(name, labels)
    return _NOOP


def span(name: str, **attrs: object) -> Union[ActiveSpan, _NoopContext]:
    """A ``with``-able trace span (nested under the current span)."""
    if _enabled:
        return _tracer.span(name, **attrs)
    return _NOOP


F = TypeVar("F", bound=Callable[..., object])


def timed(name: str) -> Callable[[F], F]:
    """Decorator: trace every call of the wrapped function as a span."""

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: object, **kwargs: object) -> object:
            if not _enabled:
                return func(*args, **kwargs)
            with _tracer.span(name):
                return func(*args, **kwargs)

        return cast(F, wrapper)

    return decorate


def stopwatch() -> Stopwatch:
    """A standalone accumulating stopwatch on the obs clock.

    Works whether or not recording is enabled — benchmarks use it for
    coarse section timing without touching the shared registry.
    """
    return Stopwatch(_clock)


# ----------------------------------------------------------------------
# export (delegates to repro.obs.report; re-exported for convenience)
# ----------------------------------------------------------------------
def snapshot(meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Combined metrics + trace snapshot as one plain dict."""
    from repro.obs.report import build_snapshot

    return build_snapshot(_registry, _tracer, meta=meta)


def export_json(path: str, meta: Optional[Dict[str, object]] = None) -> None:
    """Write the combined snapshot to a JSON file."""
    from repro.obs.report import write_json

    write_json(snapshot(meta=meta), path)


def export_csv(path: str) -> None:
    """Write flattened metric rows to a CSV file."""
    from repro.obs.report import write_csv

    write_csv(snapshot(), path)


def render_summary(data: Optional[Dict[str, object]] = None) -> str:
    """Human-readable summary table of a snapshot (default: the live one)."""
    from repro.obs.report import render_summary as _render

    return _render(data if data is not None else snapshot())


def render_prometheus(data: Optional[Dict[str, object]] = None) -> str:
    """Prometheus text exposition of a snapshot (default: the live one)."""
    from repro.obs.expo import render_prometheus as _render

    return _render(data if data is not None else snapshot())


def export_chrome_trace(path: str) -> None:
    """Write the live trace as Chrome trace-event JSON (Perfetto-loadable)."""
    from repro.obs.chrometrace import write_chrome_trace

    write_chrome_trace(snapshot(), path)
