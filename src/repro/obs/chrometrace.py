"""Chrome trace-event export: load a repro trace in Perfetto.

Converts the span tree of one canonical snapshot (the ``repro-trace``
format) into the Chrome trace-event JSON object format —
``{"traceEvents": [...]}`` with complete (``"ph": "X"``) events — which
``chrome://tracing`` and https://ui.perfetto.dev open directly.

Mapping:

* span ``start``/``duration`` (seconds on the obs clock) → ``ts``/``dur``
  in microseconds;
* the tracer's normalized thread id → ``tid`` (one track per worker
  thread, so shard-pool spans render side by side instead of stacked);
* a span's optional ``process`` id → ``pid`` (multi-process snapshots —
  the gateway's federated fleet trace — render one process row per
  worker; the default pid 0 keeps single-process traces unchanged),
  named from the trace's optional ``processes`` map;
* span attrs plus the span index/parent → ``args`` (Perfetto shows them
  in the selection panel);
* snapshot ``meta`` → process metadata events, so the run's command,
  seed, and backend are visible in the UI.

Cross-process timestamp alignment: span clocks are per-process
``time.perf_counter`` readings, which on Linux share one monotonic
epoch machine-wide, so fan-out and worker spans of the same tick line
up without translation.

Span timestamps come from a monotonic clock with an arbitrary epoch;
viewers only care about relative placement, so no normalization is done
(byte-stable exports under a fake clock stay byte-stable).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping

#: Trace-event category applied to every span event.
CATEGORY = "repro"


def chrome_trace_events(snapshot: Mapping[str, object]) -> List[Dict[str, object]]:
    """The snapshot's spans as a list of Chrome trace-event dicts."""
    trace_block = snapshot.get("trace")
    process_names = (
        trace_block.get("processes") if isinstance(trace_block, dict) else None
    )
    pid0_name = "repro"
    if isinstance(process_names, dict) and "0" in process_names:
        pid0_name = str(process_names["0"])
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": pid0_name},
        }
    ]
    meta = snapshot.get("meta")
    if isinstance(meta, dict) and meta:
        events.append(
            {
                "name": "process_labels",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {
                    "labels": ", ".join(
                        f"{key}={meta[key]}" for key in sorted(meta)
                    )
                },
            }
        )

    trace = snapshot.get("trace")
    spans = trace.get("spans", []) if isinstance(trace, dict) else []
    if not isinstance(spans, list):
        spans = []
    processes = trace.get("processes") if isinstance(trace, dict) else None
    if isinstance(processes, dict):
        for pid_key in sorted(processes, key=lambda key: int(key)):
            pid = int(pid_key)
            if pid == 0:
                continue  # pid 0's row is the header event above
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": str(processes[pid_key])},
                }
            )
    for span in spans:
        if not isinstance(span, dict):
            continue
        start = span.get("start")
        duration = span.get("duration")
        if not isinstance(start, (int, float)) or not isinstance(
            duration, (int, float)
        ):
            continue  # still-open spans have no duration
        args: Dict[str, object] = {"index": span.get("index")}
        if span.get("parent") is not None:
            args["parent"] = span.get("parent")
        attrs = span.get("attrs")
        if isinstance(attrs, dict):
            args.update(attrs)
        events.append(
            {
                "name": str(span.get("name", "?")),
                "cat": CATEGORY,
                "ph": "X",
                "ts": float(start) * 1e6,
                "dur": float(duration) * 1e6,
                "pid": int(span.get("process") or 0),
                "tid": int(span.get("thread") or 0),
                "args": args,
            }
        )
    return events


def build_chrome_trace(snapshot: Mapping[str, object]) -> Dict[str, object]:
    """The full trace document (object format, ``displayTimeUnit`` ms)."""
    return {
        "traceEvents": chrome_trace_events(snapshot),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(snapshot: Mapping[str, object], path: str) -> None:
    """Write ``snapshot``'s spans to ``path`` as Chrome trace JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(build_chrome_trace(snapshot), handle, indent=1)
        handle.write("\n")
