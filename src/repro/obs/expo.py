"""Metrics exposition: Prometheus text format and the scrape endpoint.

Two pieces, both stdlib-only:

* :func:`render_prometheus` — renders one canonical snapshot dict (the
  ``repro-trace`` format built by :mod:`repro.obs.report`) as Prometheus
  text exposition format 0.0.4. Counters become ``repro_<name>_total``,
  gauges plain gauges, histograms summaries (``{quantile="..."}`` series
  plus ``_sum``/``_count``), and a capped histogram additionally exports
  its ``_dropped_samples`` count so scraped quantiles are honestly
  labeled as estimates. Instrument label sets pass through natively.
* :class:`MetricsServer` — a background ``http.server`` thread (off by
  default; ``repro serve --metrics-port N``) serving ``GET /metrics``
  from a snapshot provider, plus ``/healthz`` and ``/readyz`` JSON from
  caller-supplied providers (epoch lag, queue depth, checkpoint age,
  shard liveness — see ``EpochScheduler.health``).

The server binds loopback by default and never touches the pipeline:
providers read already-published registry state, so a scrape cannot
perturb results (the serve determinism test covers exactly this).
"""

from __future__ import annotations

import json
import platform
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: Prometheus content type for text exposition format 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every exported metric name carries this prefix.
METRIC_PREFIX = "repro"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

SnapshotProvider = Callable[[], Dict[str, object]]
HealthProvider = Callable[[], Dict[str, object]]
AlertsProvider = Callable[[], Dict[str, object]]
AnalyticsProvider = Callable[[], Dict[str, object]]


def build_info() -> Dict[str, str]:
    """Identify the running build: package version + Python version.

    Exported as the standard info-gauge pattern
    (``repro_build_info{version,python} 1``) and embedded in the
    ``/healthz`` payload so scrapes and probes can tell which build is
    answering.
    """
    from repro import __version__

    return {"version": __version__, "python": platform.python_version()}


def metric_name(name: str, suffix: str = "") -> str:
    """``cache.hits`` → ``repro_cache_hits`` (plus an optional suffix).

    The ``repro_`` prefix keeps the result inside the exposition name
    grammar even when the instrument name starts with a digit.
    """
    flat = _NAME_OK.sub("_", name.replace(".", "_").replace("-", "_"))
    return f"{METRIC_PREFIX}_{flat}{suffix}"


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition grammar."""
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{key}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + parts + "}"


def _merged(labels: Mapping[str, str], **extra: str) -> Dict[str, str]:
    merged = {str(k): str(v) for k, v in labels.items()}
    merged.update(extra)
    return merged


def _num(value: object) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(float(value)) if isinstance(value, float) else str(value)
    return "NaN"


def _item_labels(item: Mapping[str, object]) -> Dict[str, str]:
    labels = item.get("labels")
    if isinstance(labels, dict):
        return {str(k): str(v) for k, v in labels.items()}
    return {}


def render_prometheus(snapshot: Mapping[str, object]) -> str:
    """Render one ``repro-trace`` snapshot as Prometheus text format.

    Families are emitted name-sorted, one ``# TYPE`` line per family,
    every series of a family (one per label set) grouped under it.
    """
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        metrics = {}
    lines: List[str] = []

    families: Dict[Tuple[str, str], List[Mapping[str, object]]] = {}
    for kind in ("counters", "gauges", "histograms"):
        entries = metrics.get(kind, [])
        if not isinstance(entries, list):
            continue
        for item in entries:
            families.setdefault((str(item["name"]), kind), []).append(item)

    # Prefer the build recorded in the snapshot itself (set at trace
    # write time), so `repro stats --prom` on a recorded trace reports
    # the *producing* build, not whichever build renders it. Older
    # traces without the key fall back to the live build.
    recorded = snapshot.get("build")
    info = (
        {str(k): str(v) for k, v in recorded.items()}
        if isinstance(recorded, Mapping)
        else build_info()
    )
    lines.append("# TYPE repro_build_info gauge")
    lines.append(f"repro_build_info{_label_text(info)} 1")

    for (name, kind), items in sorted(families.items()):
        if kind == "counters":
            family = metric_name(name, "_total")
            lines.append(f"# TYPE {family} counter")
            for item in items:
                labels = _label_text(_item_labels(item))
                lines.append(f"{family}{labels} {_num(item.get('value'))}")
        elif kind == "gauges":
            family = metric_name(name)
            lines.append(f"# TYPE {family} gauge")
            for item in items:
                labels = _label_text(_item_labels(item))
                lines.append(f"{family}{labels} {_num(item.get('value'))}")
        else:
            family = metric_name(name)
            lines.append(f"# TYPE {family} summary")
            dropped_total = 0
            for item in items:
                labels = _item_labels(item)
                for q_key, q_value in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
                    quantiled = _label_text(_merged(labels, quantile=q_value))
                    lines.append(f"{family}{quantiled} {_num(item.get(q_key))}")
                plain = _label_text(labels)
                lines.append(f"{family}_sum{plain} {_num(item.get('total'))}")
                lines.append(f"{family}_count{plain} {_num(item.get('count'))}")
                dropped_total += int(item.get("dropped_samples") or 0)
            if dropped_total:
                drop_family = metric_name(name, "_dropped_samples_total")
                lines.append(f"# TYPE {drop_family} counter")
                for item in items:
                    plain = _label_text(_item_labels(item))
                    lines.append(
                        f"{drop_family}{plain} "
                        f"{_num(item.get('dropped_samples'))}"
                    )

    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# HTTP exposition
# ----------------------------------------------------------------------
class MetricsServer:
    """A background scrape endpoint over stdlib ``http.server``.

    Routes:

    * ``GET /metrics`` — Prometheus text of ``snapshot_provider()``;
    * ``GET /healthz`` — ``health_provider()`` as JSON (plus a ``build``
      key from :func:`build_info`); HTTP 200 when its ``"status"`` field
      is ``"ok"`` (or absent), 503 otherwise;
    * ``GET /readyz`` — ``{"ready": bool}`` from ``ready_provider()``;
      200 when ready, 503 before the first published tick;
    * ``GET /snapshot`` — the raw snapshot dict as JSON (what the
      ``repro top`` dashboard polls for per-interval deltas);
    * ``GET /alerts`` — ``alerts_provider()`` as JSON (the alert-engine
      summary); 404 when no alert engine is wired in;
    * ``GET /analytics`` — ``analytics_provider()`` as JSON (the
      analytics engine's live summary: occupancy, flows, dwell, top
      regions); 404 when no analytics engine is attached.

    ``port=0`` binds an ephemeral port; :meth:`start` returns the bound
    port. The server runs daemonized and is stopped with :meth:`stop`
    (idempotent). Provider exceptions surface as HTTP 500 with the error
    text, never as a crashed serve loop.
    """

    def __init__(
        self,
        snapshot_provider: SnapshotProvider,
        health_provider: Optional[HealthProvider] = None,
        ready_provider: Optional[Callable[[], bool]] = None,
        alerts_provider: Optional[AlertsProvider] = None,
        analytics_provider: Optional[AnalyticsProvider] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._snapshot_provider = snapshot_provider
        self._health_provider = health_provider
        self._ready_provider = ready_provider
        self._alerts_provider = alerts_provider
        self._analytics_provider = analytics_provider
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    @property
    def port(self) -> Optional[int]:
        """The bound port, or None before :meth:`start`."""
        with self._lock:
            return None if self._server is None else self._server.server_address[1]

    def url(self, path: str = "/metrics") -> str:
        """The endpoint URL for ``path`` (server must be started)."""
        port = self.port
        if port is None:
            raise RuntimeError("metrics server is not running")
        return f"http://{self._host}:{port}{path}"

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        with self._lock:
            if self._server is not None:
                return self._server.server_address[1]
            handler = _make_handler(
                self._snapshot_provider,
                self._health_provider,
                self._ready_provider,
                self._alerts_provider,
                self._analytics_provider,
            )
            self._server = ThreadingHTTPServer(
                (self._host, self._requested_port), handler
            )
            self._server.daemon_threads = True
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
            return self._server.server_address[1]

    def stop(self) -> None:
        """Shut the endpoint down (idempotent)."""
        with self._lock:
            server, thread = self._server, self._thread
            self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def _make_handler(
    snapshot_provider: SnapshotProvider,
    health_provider: Optional[HealthProvider],
    ready_provider: Optional[Callable[[], bool]],
    alerts_provider: Optional[AlertsProvider] = None,
    analytics_provider: Optional[AnalyticsProvider] = None,
) -> type:
    """Build the request-handler class closed over the providers."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-metrics"

        def log_message(self, format: str, *args: object) -> None:
            # Scrapes are high-frequency; stderr chatter is not telemetry.
            return None

        def _send(self, status: int, content_type: str, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload: Dict[str, object]) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._send(status, "application/json; charset=utf-8", body)

        def do_GET(self) -> None:  # noqa: N802 - http.server contract
            path = self.path.split("?", 1)[0]
            try:
                if path == "/metrics":
                    text = render_prometheus(snapshot_provider())
                    self._send(
                        200, PROMETHEUS_CONTENT_TYPE, text.encode("utf-8")
                    )
                elif path == "/healthz":
                    health: Dict[str, object] = (
                        dict(health_provider()) if health_provider else {}
                    )
                    health.setdefault("status", "ok")
                    health.setdefault("build", build_info())
                    status = 200 if health["status"] == "ok" else 503
                    self._send_json(status, health)
                elif path == "/readyz":
                    ready = bool(ready_provider()) if ready_provider else True
                    self._send_json(
                        200 if ready else 503, {"ready": ready}
                    )
                elif path == "/snapshot":
                    self._send_json(200, dict(snapshot_provider()))
                elif path == "/alerts":
                    if alerts_provider is None:
                        self._send_json(
                            404, {"error": "no alert engine configured"}
                        )
                    else:
                        self._send_json(200, dict(alerts_provider()))
                elif path == "/analytics":
                    if analytics_provider is None:
                        self._send_json(
                            404, {"error": "no analytics engine attached"}
                        )
                    else:
                        self._send_json(200, dict(analytics_provider()))
                else:
                    self._send_json(404, {"error": f"no route {path}"})
            except Exception as exc:  # pragma: no cover - provider failure
                self._send_json(500, {"error": str(exc)})

    return Handler
