"""Exporters and the human-readable summary for observability data.

One snapshot format is shared by every consumer::

    {
      "format": "repro-trace",
      "version": 1,
      "meta": {...},                      # caller-supplied context
      "metrics": {"counters": [...], "gauges": [...], "histograms": [...]},
      "trace": {"spans": [...], "aggregates": [...], "dropped": N}
    }

``repro simulate --trace out.json`` writes it, ``repro stats out.json``
renders it, and benchmarks embed the ``metrics``/``aggregates`` parts in
their bench JSON phase breakdowns.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

TRACE_FORMAT = "repro-trace"
#: Version 2 added per-series label sets, histogram ``dropped_samples``
#: counts, and span ``thread`` ids; version-1 files still load.
TRACE_VERSION = 2


def series_name(item: Dict[str, object]) -> str:
    """One instrument's display name: ``name{k=v,...}`` when labeled."""
    name = str(item["name"])
    labels = item.get("labels")
    if not isinstance(labels, dict) or not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


def build_snapshot(
    registry: MetricsRegistry,
    tracer: Tracer,
    meta: Optional[dict] = None,
) -> dict:
    """Assemble the canonical snapshot dict from live instruments."""
    from repro.obs.expo import build_info

    return {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "meta": dict(meta) if meta else {},
        # Recorded at write time so offline renders (`repro stats
        # --prom`) report the build that *produced* the trace.
        "build": build_info(),
        "metrics": registry.snapshot(),
        "trace": tracer.snapshot(),
    }


def write_json(data: dict, path: str) -> None:
    """Write one snapshot as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_trace(path: str) -> dict:
    """Read and validate a snapshot written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"{path} is not a repro trace file (missing format={TRACE_FORMAT!r})"
        )
    return data


def metric_rows(data: dict) -> List[Dict[str, object]]:
    """Flatten a snapshot into uniform rows (one per instrument/aggregate)."""
    rows: List[Dict[str, object]] = []
    metrics = data.get("metrics", {})
    for item in metrics.get("counters", []):
        rows.append(
            {"kind": "counter", "name": series_name(item), "value": item["value"]}
        )
    for item in metrics.get("gauges", []):
        rows.append(
            {"kind": "gauge", "name": series_name(item), "value": item["value"]}
        )
    for item in metrics.get("histograms", []):
        rows.append(
            {
                "kind": "histogram",
                "name": series_name(item),
                "count": item["count"],
                "total": item["total"],
                "mean": item["mean"],
                "min": item["min"],
                "max": item["max"],
                "p50": item.get("p50"),
                "p90": item.get("p90"),
                "p99": item.get("p99"),
                "dropped_samples": item.get("dropped_samples", 0),
            }
        )
    for item in data.get("trace", {}).get("aggregates", []):
        rows.append(
            {
                "kind": "span",
                "name": item["name"],
                "count": item["count"],
                "total": item["total"],
                "mean": item["mean"],
                "min": item["min"],
                "max": item["max"],
            }
        )
    return rows


def write_csv(data: dict, path: str) -> None:
    """Write the flattened metric rows as CSV."""
    columns = [
        "kind", "name", "value", "count", "total",
        "mean", "min", "max", "p50", "p90", "p99", "dropped_samples",
    ]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in metric_rows(data):
            writer.writerow({c: row.get(c, "") for c in columns})


# ----------------------------------------------------------------------
# human-readable summary
# ----------------------------------------------------------------------
def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _table(rows: List[Dict[str, object]], columns: List[str]) -> List[str]:
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = ["  ".join(c.ljust(widths[c]) for c in columns)]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
        )
    return lines


def render_summary(data: dict) -> str:
    """Render one snapshot as aligned text tables, grouped by kind.

    Sections: run metadata, counters (events: readings, pruning, cache),
    gauges, timing histograms, and span rollups with a share-of-parent
    column computed against the largest span total.
    """
    rows = metric_rows(data)
    lines: List[str] = []

    meta = data.get("meta") or {}
    if meta:
        lines.append("meta")
        for key in sorted(meta):
            lines.append(f"  {key} = {meta[key]}")
        lines.append("")

    counters = [r for r in rows if r["kind"] == "counter"]
    if counters:
        lines.append("counters")
        lines.extend(_table(counters, ["name", "value"]))
        lines.append("")

    gauges = [r for r in rows if r["kind"] == "gauge"]
    if gauges:
        lines.append("gauges")
        lines.extend(_table(gauges, ["name", "value"]))
        lines.append("")

    histograms = [r for r in rows if r["kind"] == "histogram"]
    if histograms:
        capped = sum(int(r.get("dropped_samples") or 0) for r in histograms)
        lines.append("histograms (seconds unless noted)")
        lines.extend(
            _table(
                histograms,
                ["name", "count", "total", "mean", "p50", "p90", "p99", "max"],
            )
        )
        if capped:
            lines.append(
                f"({capped} samples past the retention cap; quantiles are "
                "estimates over the retained prefix, totals exact)"
            )
        lines.append("")

    spans = [r for r in rows if r["kind"] == "span"]
    if spans:
        grand = max((r["total"] for r in spans), default=0.0) or 1.0
        for row in spans:
            row["share"] = f"{100.0 * row['total'] / grand:.1f}%"
        lines.append("spans (share is of the largest span total)")
        lines.extend(
            _table(spans, ["name", "count", "total", "mean", "max", "share"])
        )
        dropped = data.get("trace", {}).get("dropped", 0)
        if dropped:
            lines.append(
                f"({dropped} spans past the retention cap; aggregates exact)"
            )
        lines.append("")

    if not (counters or gauges or histograms or spans):
        lines.append("(empty trace: nothing was recorded)")
    return "\n".join(lines).rstrip("\n")
