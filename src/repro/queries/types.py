"""Query and result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.geometry import Point, Rect


@dataclass(frozen=True)
class RangeQuery:
    """A snapshot indoor range query: find objects inside ``window``."""

    query_id: str
    window: Rect


@dataclass(frozen=True)
class KNNQuery:
    """A snapshot indoor kNN query from ``point``.

    The query point is approximated to the nearest walking-graph edge
    during evaluation (paper Section 4.6).
    """

    query_id: str
    point: Point
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")


@dataclass
class RangeResult:
    """Probabilistic range query answer: object -> P(object in window)."""

    query_id: str
    probabilities: Dict[str, float] = field(default_factory=dict)

    def add(self, object_id: str, probability: float) -> None:
        """Accumulate probability mass for an object (Algorithm 3 line 16)."""
        self.probabilities[object_id] = (
            self.probabilities.get(object_id, 0.0) + probability
        )

    def scaled(self, ratio: float) -> "RangeResult":
        """A copy with all probabilities multiplied by ``ratio`` (line 15)."""
        return RangeResult(
            self.query_id,
            {obj: p * ratio for obj, p in self.probabilities.items()},
        )

    def merge(self, other: "RangeResult") -> None:
        """Add another partial result into this one."""
        for object_id, probability in other.probabilities.items():
            self.add(object_id, probability)

    def top(self, n: int) -> List[Tuple[str, float]]:
        """The ``n`` most probable objects."""
        ranked = sorted(
            self.probabilities.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:n]

    def objects(self) -> List[str]:
        """All objects with non-zero probability."""
        return [obj for obj, p in self.probabilities.items() if p > 0.0]


@dataclass
class KNNResult:
    """Probabilistic kNN answer: ``{(o1, p1), ...}`` with ``sum(p) >= k``.

    ``p_i`` is the probability that ``o_i`` belongs to the kNN result set
    (paper Section 4.6.2).
    """

    query_id: str
    probabilities: Dict[str, float] = field(default_factory=dict)

    @property
    def total_probability(self) -> float:
        """Accumulated mass over all returned objects."""
        return sum(self.probabilities.values())

    def ranked(self) -> List[Tuple[str, float]]:
        """Objects by descending probability (ties break by id)."""
        return sorted(
            self.probabilities.items(), key=lambda item: (-item[1], item[0])
        )

    def top(self, n: int) -> List[str]:
        """The ``n`` most probable object ids (the max-probability set)."""
        return [obj for obj, _ in self.ranked()[:n]]

    def objects(self) -> List[str]:
        """All returned object ids."""
        return list(self.probabilities.keys())

    def above_threshold(self, threshold: float) -> List[str]:
        """Objects whose membership probability is at least ``threshold``.

        This is the result form of a probabilistic threshold kNN query
        (PTkNN, Yang et al. — the paper's reference [30]): the objects
        with probability of belonging to the kNN set above ``T``.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        return [
            obj for obj, p in self.ranked() if p >= threshold
        ]
