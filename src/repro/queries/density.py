"""Zone density queries: expected object counts per region.

A generalization of range queries that facility dashboards want: the
expected number of objects per room (or per arbitrary zone), computed
from the same filtered ``APtoObjHT`` table the other query types use.
Expectations are additive over objects, so the per-zone expected count
is just the sum of per-object in-zone probabilities (Algorithm 3 per
zone).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Mapping, Optional

from repro.analytics.regions import RegionMap
from repro.floorplan.plan import FloorPlan
from repro.geometry import Rect
from repro.graph.anchors import AnchorIndex
from repro.index.hashtable import AnchorObjectTable
from repro.queries.range_query import evaluate_range_query
from repro.queries.types import RangeQuery


@lru_cache(maxsize=8)
def _region_map_for(plan: FloorPlan, anchor_index: AnchorIndex) -> RegionMap:
    """One precomputed anchor→room map per (plan, index) pair."""
    return RegionMap(plan, anchor_index)


@dataclass(frozen=True)
class ZoneDensity:
    """Expected occupancy of one zone."""

    zone_id: str
    expected_count: float
    top_objects: tuple

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.zone_id}: E[count]={self.expected_count:.2f}"


def zone_densities(
    zones: Mapping[str, Rect],
    plan: FloorPlan,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
    top_n: int = 3,
) -> List[ZoneDensity]:
    """Expected object count per zone, sorted densest first."""
    results: List[ZoneDensity] = []
    for zone_id, window in zones.items():
        answer = evaluate_range_query(
            RangeQuery(zone_id, window), plan, anchor_index, table
        )
        expected = sum(answer.probabilities.values())
        results.append(
            ZoneDensity(
                zone_id=zone_id,
                expected_count=expected,
                top_objects=tuple(answer.top(top_n)),
            )
        )
    results.sort(key=lambda z: (-z.expected_count, z.zone_id))
    return results


def room_densities(
    plan: FloorPlan,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
    top_n: int = 3,
) -> List[ZoneDensity]:
    """Expected occupancy of every room of the plan.

    Thin shim over the analytics region model
    (:class:`repro.analytics.regions.RegionMap`): each object's posterior
    folds through the precomputed anchor→room map in one sparse pass —
    no per-room range query, no anchor rescans. A live
    :class:`~repro.analytics.engine.AnalyticsEngine` serves the same
    rows straight from its maintained aggregates without touching the
    table at all.
    """
    region_map = _region_map_for(plan, anchor_index)
    membership: Dict[str, Dict[str, float]] = {
        room_id: {} for room_id in region_map.room_ids()
    }
    for object_id in sorted(table.objects()):
        mass = region_map.fold(table.distribution_of(object_id))
        for region, value in mass.items():
            if region in membership and value > 0.0:
                membership[region][object_id] = value
    results: List[ZoneDensity] = []
    for room_id in region_map.room_ids():
        members = sorted(
            membership[room_id].items(), key=lambda item: (-item[1], item[0])
        )
        results.append(
            ZoneDensity(
                zone_id=room_id,
                expected_count=sum(membership[room_id].values()),
                top_objects=tuple(members[:top_n]),
            )
        )
    results.sort(key=lambda z: (-z.expected_count, z.zone_id))
    return results


def busiest_zone(
    zones: Mapping[str, Rect],
    plan: FloorPlan,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
) -> Optional[ZoneDensity]:
    """The densest zone, or None when ``zones`` is empty."""
    ranked = zone_densities(zones, plan, anchor_index, table)
    return ranked[0] if ranked else None


def total_expected_objects(densities: Mapping[str, float]) -> float:
    """Sum of expected counts over disjoint zones (sanity helper)."""
    return sum(densities.values())
