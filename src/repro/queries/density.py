"""Zone density queries: expected object counts per region.

A generalization of range queries that facility dashboards want: the
expected number of objects per room (or per arbitrary zone), computed
from the same filtered ``APtoObjHT`` table the other query types use.
Expectations are additive over objects, so the per-zone expected count
is just the sum of per-object in-zone probabilities (Algorithm 3 per
zone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.floorplan.plan import FloorPlan
from repro.geometry import Rect
from repro.graph.anchors import AnchorIndex
from repro.index.hashtable import AnchorObjectTable
from repro.queries.range_query import evaluate_range_query
from repro.queries.types import RangeQuery


@dataclass(frozen=True)
class ZoneDensity:
    """Expected occupancy of one zone."""

    zone_id: str
    expected_count: float
    top_objects: tuple

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.zone_id}: E[count]={self.expected_count:.2f}"


def zone_densities(
    zones: Mapping[str, Rect],
    plan: FloorPlan,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
    top_n: int = 3,
) -> List[ZoneDensity]:
    """Expected object count per zone, sorted densest first."""
    results: List[ZoneDensity] = []
    for zone_id, window in zones.items():
        answer = evaluate_range_query(
            RangeQuery(zone_id, window), plan, anchor_index, table
        )
        expected = sum(answer.probabilities.values())
        results.append(
            ZoneDensity(
                zone_id=zone_id,
                expected_count=expected,
                top_objects=tuple(answer.top(top_n)),
            )
        )
    results.sort(key=lambda z: (-z.expected_count, z.zone_id))
    return results


def room_densities(
    plan: FloorPlan,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
    top_n: int = 3,
) -> List[ZoneDensity]:
    """Expected occupancy of every room of the plan."""
    zones = {room.room_id: room.boundary for room in plan.rooms}
    return zone_densities(zones, plan, anchor_index, table, top_n=top_n)


def busiest_zone(
    zones: Mapping[str, Rect],
    plan: FloorPlan,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
) -> Optional[ZoneDensity]:
    """The densest zone, or None when ``zones`` is empty."""
    ranked = zone_densities(zones, plan, anchor_index, table)
    return ranked[0] if ranked else None


def total_expected_objects(densities: Mapping[str, float]) -> float:
    """Sum of expected counts over disjoint zones (sanity helper)."""
    return sum(densities.values())
