"""Indoor range query evaluation (paper Algorithm 3).

Anchor points are a 1-D projection of the 2-D indoor space, so summing
anchor probabilities alone would over-count: the algorithm compensates per
intersected cell —

* hallway cells: anchors within the query's span *along* the hallway are
  counted, scaled by ``w_qh / w_h`` (the fraction of the hallway width the
  window covers), because objects are equally likely anywhere across the
  width;
* room cells: all anchors of the room are counted, scaled by
  ``Area_qr / Area_R`` (objects are uniform within a room).

Along the hallway *length* each anchor stands for a ``spacing``-wide
stretch of hallway (anchors are the 1-D discretization of the
centerline), so anchors at the window boundary contribute fractionally —
the same uniform-compensation argument the paper applies across the
width, applied along the length. This removes quantization cliffs when a
window edge falls between two anchors.
"""

from __future__ import annotations


from repro.floorplan.entities import Hallway
from repro.floorplan.plan import FloorPlan
from repro.geometry import Rect
from repro.graph.anchors import AnchorIndex
from repro.index.hashtable import AnchorObjectTable
from repro.queries.types import RangeQuery, RangeResult

_EPS_AREA = 1e-12


def evaluate_range_query(
    query: RangeQuery,
    plan: FloorPlan,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
) -> RangeResult:
    """Evaluate one range query over the filtered ``APtoObjHT`` table."""
    result = RangeResult(query.query_id)

    for hallway in plan.hallways:
        partial = _hallway_part(query, hallway, anchor_index, table)
        if partial is not None:
            result.merge(partial)

    for room in plan.rooms:
        overlap = room.boundary.overlap_area(query.window)
        if overlap <= _EPS_AREA:
            continue
        ratio = overlap / room.area
        partial = RangeResult(query.query_id)
        for ap in anchor_index.in_room(room.room_id):
            for object_id, probability in table.items_at(ap.ap_id):
                partial.add(object_id, probability)
        result.merge(partial.scaled(ratio))

    return result


def _hallway_part(
    query: RangeQuery,
    hallway: Hallway,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
) -> RangeResult:
    """The hallway contribution: span-selected anchors scaled by width ratio."""
    band = hallway.band
    overlap = band.intersection(query.window)
    if overlap is None or overlap.area <= _EPS_AREA:
        return None

    half = anchor_index.spacing / 2.0
    if hallway.centerline.is_horizontal:
        ratio = overlap.height / hallway.width
        lo, hi = overlap.min_x, overlap.max_x
        axis_lo, axis_hi = band.min_x, band.max_x
        span = Rect(lo - half, band.min_y, hi + half, band.max_y)
        axis_coord = lambda ap: ap.point.x  # noqa: E731
    else:
        ratio = overlap.width / hallway.width
        lo, hi = overlap.min_y, overlap.max_y
        axis_lo, axis_hi = band.min_y, band.max_y
        span = Rect(band.min_x, lo - half, band.max_x, hi + half)
        axis_coord = lambda ap: ap.point.y  # noqa: E731

    partial = RangeResult(query.query_id)
    for ap in anchor_index.in_rect(span):
        if ap.hallway_id != hallway.hallway_id:
            continue
        coord = axis_coord(ap)
        # The hallway stretch this anchor stands for, clamped to the
        # hallway extent (edge-end anchors represent half cells).
        cell_lo = max(coord - half, axis_lo)
        cell_hi = min(coord + half, axis_hi)
        if cell_hi - cell_lo <= 0.0:
            continue
        covered = min(cell_hi, hi) - max(cell_lo, lo)
        fraction = min(max(covered / (cell_hi - cell_lo), 0.0), 1.0)
        if fraction <= 0.0:
            continue
        for object_id, probability in table.items_at(ap.ap_id):
            partial.add(object_id, probability * fraction)
    return partial.scaled(ratio)
