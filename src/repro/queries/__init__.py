"""Indoor spatial query evaluation (paper Sections 4.3 and 4.6).

* :mod:`repro.queries.types` — query and result records;
* :mod:`repro.queries.pruning` — the query-aware optimization module;
* :mod:`repro.queries.range_query` — Algorithm 3 (indoor range query);
* :mod:`repro.queries.knn_query` — Algorithm 4 (indoor kNN query);
* :mod:`repro.queries.engine` — the full system of paper Figure 3.
"""

from repro.queries.types import KNNQuery, KNNResult, RangeQuery, RangeResult
from repro.queries.pruning import QueryAwareOptimizer, uncertain_region
from repro.queries.range_query import evaluate_range_query
from repro.queries.knn_query import evaluate_knn_query
from repro.queries.closest_pairs import PairResult, evaluate_closest_pairs
from repro.queries.continuous import ContinuousQueryMonitor, ResultDelta
from repro.queries.density import ZoneDensity, room_densities, zone_densities
from repro.queries.events import (
    And,
    Event,
    EventContext,
    InRoom,
    InZone,
    Near,
    Not,
    Or,
    Together,
)
from repro.queries.engine import EngineSnapshot, IndoorQueryEngine

__all__ = [
    "RangeQuery",
    "KNNQuery",
    "RangeResult",
    "KNNResult",
    "QueryAwareOptimizer",
    "uncertain_region",
    "evaluate_range_query",
    "evaluate_knn_query",
    "evaluate_closest_pairs",
    "PairResult",
    "ContinuousQueryMonitor",
    "ResultDelta",
    "ZoneDensity",
    "zone_densities",
    "room_densities",
    "Event",
    "EventContext",
    "InZone",
    "InRoom",
    "Near",
    "Together",
    "And",
    "Or",
    "Not",
    "IndoorQueryEngine",
    "EngineSnapshot",
]
