"""The complete query evaluation system (paper Figure 3).

Wires together the five modules:

1. event-driven raw data collector,
2. query-aware optimization module,
3. particle filter-based preprocessing module,
4. cache management module (optional),
5. query evaluation module (Algorithms 3 and 4).

Raw readings flow in second by second via :meth:`IndoorQueryEngine.ingest_second`;
registered queries are answered at any timestamp via :meth:`evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

import repro.obs as obs
from repro.cache.particle_cache import ParticleCacheManager
from repro.collector.collector import EventDrivenCollector
from repro.collector.historical import HistoricalCollector
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.core.preprocessing import PreprocessingModule
from repro.core.resampling import systematic_resample
from repro.filters.registry import BackendSpec, create_backend
from repro.floorplan.plan import FloorPlan
from repro.geometry import Point, Rect
from repro.graph.anchors import AnchorIndex, build_anchor_index
from repro.graph.walking_graph import WalkingGraph, build_walking_graph
from repro.index.hashtable import AnchorObjectTable
from repro.queries.knn_query import evaluate_knn_query
from repro.queries.pruning import QueryAwareOptimizer
from repro.queries.range_query import evaluate_range_query
from repro.queries.types import KNNQuery, KNNResult, RangeQuery, RangeResult
from repro.rfid.reader import RFIDReader
from repro.rfid.readings import RawReading
from repro.rng import RngLike, make_rng


@dataclass
class EngineSnapshot:
    """One evaluation round: candidate set, filtered table, query answers."""

    second: int
    candidates: Set[str]
    table: AnchorObjectTable
    range_results: Dict[str, RangeResult] = field(default_factory=dict)
    knn_results: Dict[str, KNNResult] = field(default_factory=dict)


class IndoorQueryEngine:
    """RFID + particle filter indoor spatial query evaluation system."""

    def __init__(
        self,
        plan: FloorPlan,
        readers: Sequence[RFIDReader],
        tag_to_object: Mapping[str, str],
        config: SimulationConfig = DEFAULT_CONFIG,
        graph: Optional[WalkingGraph] = None,
        anchor_index: Optional[AnchorIndex] = None,
        use_cache: bool = True,
        use_pruning: bool = True,
        historical: bool = False,
        resampler=systematic_resample,
        filter_backend: BackendSpec = "particle",
    ):
        self.plan = plan
        self.config = config
        self.graph = graph if graph is not None else build_walking_graph(plan)
        self.anchor_index = (
            anchor_index
            if anchor_index is not None
            else build_anchor_index(self.graph, config.anchor_spacing)
        )
        self.readers = {r.reader_id: r for r in readers}
        collector_cls = HistoricalCollector if historical else EventDrivenCollector
        self.collector = collector_cls(tag_to_object)
        self.resampler = resampler
        self.filter_backend = create_backend(
            filter_backend,
            self.graph,
            self.anchor_index,
            self.readers,
            config,
            resampler=resampler,
        )
        self.cache = (
            ParticleCacheManager(
                backend=self.filter_backend.name,
                state_version=self.filter_backend.state_version,
                decoder=self.filter_backend.state_from_dict,
            )
            if use_cache and self.filter_backend.cacheable
            else None
        )
        self.use_pruning = use_pruning
        self.optimizer = QueryAwareOptimizer(
            self.graph, self.anchor_index, self.readers, config
        )
        self.preprocessing = PreprocessingModule(
            self.graph,
            self.anchor_index,
            self.readers,
            config,
            cache=self.cache,
            resampler=resampler,
            backend=self.filter_backend,
        )
        self._range_queries: List[RangeQuery] = []
        self._knn_queries: List[KNNQuery] = []

    # ------------------------------------------------------------------
    # data ingestion
    # ------------------------------------------------------------------
    def ingest_second(self, second: int, raw_readings: Sequence[RawReading]) -> None:
        """Feed one second of raw RFID readings into the collector."""
        self.collector.ingest_second(second, raw_readings)

    # ------------------------------------------------------------------
    # query registration
    # ------------------------------------------------------------------
    def register_range_query(self, query: RangeQuery) -> None:
        """Register a range query for the next evaluation round."""
        self._range_queries.append(query)

    def register_knn_query(self, query: KNNQuery) -> None:
        """Register a kNN query for the next evaluation round."""
        self._knn_queries.append(query)

    def clear_queries(self) -> None:
        """Drop all registered queries."""
        self._range_queries.clear()
        self._knn_queries.clear()

    def unregister_query(self, query_id: str) -> bool:
        """Drop one registered query (range or kNN) by id.

        Returns True when a query was removed. Standing-query sessions
        (:mod:`repro.service.sessions`) rely on this to cancel
        subscriptions without disturbing the other registered queries.
        """
        for queries in (self._range_queries, self._knn_queries):
            for index, query in enumerate(queries):
                if query.query_id == query_id:
                    del queries[index]
                    return True
        return False

    @property
    def range_queries(self) -> List[RangeQuery]:
        """Currently registered range queries."""
        return list(self._range_queries)

    @property
    def knn_queries(self) -> List[KNNQuery]:
        """Currently registered kNN queries."""
        return list(self._knn_queries)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def step(
        self, second: int, raw_readings: Sequence[RawReading], rng: RngLike = None
    ) -> EngineSnapshot:
        """One full pipeline tick: ingest one second, then evaluate it.

        This is the per-tick unit the online service layer
        (:mod:`repro.service`) schedules repeatedly; the batch simulator
        drives exactly the same ingest/evaluate code, just from its own
        loop.
        """
        self.ingest_second(second, raw_readings)
        return self.evaluate(second, rng)

    def evaluate(self, now: int, rng: RngLike = None) -> EngineSnapshot:
        """Answer every registered query at time ``now``.

        Runs the full Figure-3 pipeline: candidate pruning, particle
        filtering (with cache reuse), anchor discretization, and query
        evaluation over the resulting ``APtoObjHT`` table.
        """
        generator = make_rng(rng)
        with obs.span("engine.evaluate", second=now):
            if self.use_pruning:
                candidates = self.optimizer.candidates(
                    self.collector, now, self._range_queries, self._knn_queries
                )
            else:
                candidates = set(self.collector.observed_objects())

            with obs.span(
                "engine.filter",
                candidates=len(candidates),
                backend=self.filter_backend.name,
            ):
                table = self.preprocessing.process(
                    sorted(candidates), self.collector, now, generator
                )
            snapshot = EngineSnapshot(
                second=now, candidates=candidates, table=table
            )
            with obs.span("engine.query_eval"):
                for query in self._range_queries:
                    snapshot.range_results[query.query_id] = evaluate_range_query(
                        query, self.plan, self.anchor_index, table
                    )
                for query in self._knn_queries:
                    snapshot.knn_results[query.query_id] = evaluate_knn_query(
                        query, self.graph, self.anchor_index, table
                    )
            if obs.enabled():
                obs.add("engine.rounds")
                obs.add("engine.range_queries", len(self._range_queries))
                obs.add("engine.knn_queries", len(self._knn_queries))
                obs.add(
                    "engine.queries",
                    len(self._range_queries),
                    labels={"query": "range"},
                )
                obs.add(
                    "engine.queries",
                    len(self._knn_queries),
                    labels={"query": "knn"},
                )
                obs.add("engine.objects_evaluated", len(table.objects()))
        return snapshot

    # ------------------------------------------------------------------
    # historical evaluation (requires historical=True)
    # ------------------------------------------------------------------
    def evaluate_at(self, second: int, rng: RngLike = None) -> EngineSnapshot:
        """Answer every registered query *as of* a past second.

        Requires the engine to have been constructed with
        ``historical=True`` (a :class:`HistoricalCollector` keeping full
        reading history). The particle filters are replayed from the
        reading window that was current at ``second``; the cache is
        bypassed so live snapshot state is never polluted with past
        states.
        """
        if not isinstance(self.collector, HistoricalCollector):
            raise TypeError(
                "historical evaluation needs IndoorQueryEngine(historical=True)"
            )
        generator = make_rng(rng)
        view = self.collector.as_of_view(second)
        if self.use_pruning:
            candidates = self.optimizer.candidates(
                view, second, self._range_queries, self._knn_queries
            )
        else:
            candidates = set(view.observed_objects())

        table = self._historical_preprocessing().process(
            sorted(candidates), view, second, generator
        )
        snapshot = EngineSnapshot(second=second, candidates=candidates, table=table)
        for query in self._range_queries:
            snapshot.range_results[query.query_id] = evaluate_range_query(
                query, self.plan, self.anchor_index, table
            )
        for query in self._knn_queries:
            snapshot.knn_results[query.query_id] = evaluate_knn_query(
                query, self.graph, self.anchor_index, table
            )
        return snapshot

    def range_query_at(
        self, window: Rect, second: int, rng: RngLike = None
    ) -> RangeResult:
        """A single historical range query."""
        query = RangeQuery("adhoc-range-at", window)
        saved = self._range_queries, self._knn_queries
        self._range_queries, self._knn_queries = [query], []
        try:
            snapshot = self.evaluate_at(second, rng)
        finally:
            self._range_queries, self._knn_queries = saved
        return snapshot.range_results[query.query_id]

    def knn_query_at(
        self, point: Point, k: int, second: int, rng: RngLike = None
    ) -> KNNResult:
        """A single historical kNN query."""
        query = KNNQuery("adhoc-knn-at", point, k)
        saved = self._range_queries, self._knn_queries
        self._range_queries, self._knn_queries = [], [query]
        try:
            snapshot = self.evaluate_at(second, rng)
        finally:
            self._range_queries, self._knn_queries = saved
        return snapshot.knn_results[query.query_id]

    def _historical_preprocessing(self) -> PreprocessingModule:
        """A cache-less preprocessing module for time-travel evaluation."""
        if getattr(self, "_historical_pp", None) is None:
            self._historical_pp = PreprocessingModule(
                self.graph,
                self.anchor_index,
                self.readers,
                self.config,
                cache=None,
                resampler=self.resampler,
                backend=self.filter_backend,
            )
        return self._historical_pp

    # ------------------------------------------------------------------
    # one-shot conveniences
    # ------------------------------------------------------------------
    def range_query(self, window: Rect, now: int, rng: RngLike = None) -> RangeResult:
        """Answer a single ad-hoc range query at time ``now``."""
        query = RangeQuery("adhoc-range", window)
        saved_range, saved_knn = self._range_queries, self._knn_queries
        self._range_queries, self._knn_queries = [query], []
        try:
            snapshot = self.evaluate(now, rng)
        finally:
            self._range_queries, self._knn_queries = saved_range, saved_knn
        return snapshot.range_results[query.query_id]

    def knn_query(
        self, point: Point, k: int, now: int, rng: RngLike = None
    ) -> KNNResult:
        """Answer a single ad-hoc kNN query at time ``now``."""
        query = KNNQuery("adhoc-knn", point, k)
        saved_range, saved_knn = self._range_queries, self._knn_queries
        self._range_queries, self._knn_queries = [], [query]
        try:
            snapshot = self.evaluate(now, rng)
        finally:
            self._range_queries, self._knn_queries = saved_range, saved_knn
        return snapshot.knn_results[query.query_id]

    def locations_snapshot(self, now: int, rng: RngLike = None) -> AnchorObjectTable:
        """Filtered location distributions for *all* observed objects.

        Bypasses query-aware pruning; used by the top-k success metric,
        which needs every object's distribution.
        """
        return self.preprocessing.process(
            sorted(self.collector.observed_objects()),
            self.collector,
            now,
            make_rng(rng),
        )
