"""Probabilistic event predicates over inferred locations.

The RFID event-processing literature the paper builds on (Section 2.2,
e.g. "Is Joe meeting with Mary in Room 203?") asks *event queries* over
probabilistic location streams. This module provides a small composable
predicate algebra evaluated against an ``APtoObjHT`` table:

* ``InZone(object, window)`` — P(object inside a region);
* ``Near(a, b, distance)`` — P(walking distance between two objects is
  at most ``distance``);
* ``Together(a, b, window)`` — P(both inside a region);
* combinators ``And`` / ``Or`` / ``Not``.

Combinators treat operand events as independent — exact joint
distributions over many objects are exponential, and independence is the
standard approximation in this literature. ``Near`` is exact (it sums
the joint anchor grid of the two objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.floorplan.plan import FloorPlan
from repro.geometry import Rect
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.index.hashtable import AnchorObjectTable
from repro.queries.range_query import evaluate_range_query
from repro.queries.types import RangeQuery


@dataclass(frozen=True)
class EventContext:
    """Everything a predicate needs to evaluate."""

    plan: FloorPlan
    graph: WalkingGraph
    anchor_index: AnchorIndex
    table: AnchorObjectTable


class Event:
    """Base class: a predicate with a probability given a context."""

    def probability(self, context: EventContext) -> float:
        """P(event) under the context's location distributions."""
        raise NotImplementedError

    # Operator sugar: (a & b), (a | b), ~a.
    def __and__(self, other: "Event") -> "Event":
        return And((self, other))

    def __or__(self, other: "Event") -> "Event":
        return Or((self, other))

    def __invert__(self) -> "Event":
        return Not(self)


@dataclass(frozen=True)
class InZone(Event):
    """The object is inside a rectangular zone."""

    object_id: str
    window: Rect

    def probability(self, context: EventContext) -> float:
        result = evaluate_range_query(
            RangeQuery("event-zone", self.window),
            context.plan,
            context.anchor_index,
            context.table,
        )
        return min(result.probabilities.get(self.object_id, 0.0), 1.0)


@dataclass(frozen=True)
class InRoom(Event):
    """The object is inside a named room."""

    object_id: str
    room_id: str

    def probability(self, context: EventContext) -> float:
        boundary = context.plan.room(self.room_id).boundary
        return InZone(self.object_id, boundary).probability(context)


@dataclass(frozen=True)
class Near(Event):
    """Two objects are within a walking distance of each other.

    Exact under the anchor distributions: sums the joint probability of
    all anchor pairs within ``max_distance`` (distributions are a few
    dozen anchors at most after filtering).
    """

    object_a: str
    object_b: str
    max_distance: float

    def probability(self, context: EventContext) -> float:
        if self.max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        dist_a = context.table.distribution_of(self.object_a)
        dist_b = context.table.distribution_of(self.object_b)
        if not dist_a or not dist_b:
            return 0.0
        total = 0.0
        for ap_a, p_a in dist_a.items():
            loc_a = context.anchor_index.anchor(ap_a).location
            for ap_b, p_b in dist_b.items():
                loc_b = context.anchor_index.anchor(ap_b).location
                if context.graph.distance(loc_a, loc_b) <= self.max_distance:
                    total += p_a * p_b
        return min(total, 1.0)


@dataclass(frozen=True)
class Together(Event):
    """Both objects are inside the same zone (independence-approximate)."""

    object_a: str
    object_b: str
    window: Rect

    def probability(self, context: EventContext) -> float:
        p_a = InZone(self.object_a, self.window).probability(context)
        p_b = InZone(self.object_b, self.window).probability(context)
        return p_a * p_b


@dataclass(frozen=True)
class And(Event):
    """All operand events hold (independence-approximate)."""

    events: Sequence[Event]

    def probability(self, context: EventContext) -> float:
        result = 1.0
        for event in self.events:
            result *= event.probability(context)
        return result


@dataclass(frozen=True)
class Or(Event):
    """At least one operand event holds (independence-approximate)."""

    events: Sequence[Event]

    def probability(self, context: EventContext) -> float:
        none = 1.0
        for event in self.events:
            none *= 1.0 - event.probability(context)
        return 1.0 - none


@dataclass(frozen=True)
class Not(Event):
    """The operand event does not hold."""

    event: Event

    def probability(self, context: EventContext) -> float:
        return 1.0 - self.event.probability(context)
