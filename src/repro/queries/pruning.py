"""Query-aware optimization module (paper Section 4.3).

Filters out *non-candidate objects* — objects that cannot possibly appear
in any registered query's result — before the expensive particle
filtering step.

* Range queries: an object's *uncertain region* ``UR(o_i)`` is a circle
  centered at its last detecting device ``d`` with radius
  ``u_max * (t_now - t_last) + d.range``; if the circle misses every query
  window, the object is pruned (Euclidean test, deliberately cheaper than
  indoor walking distance).
* kNN queries: distance-based pruning with ``s_i`` / ``l_i``, the minimum
  / maximum shortest network distance from the query point to ``UR(o_i)``;
  an object whose ``s_i`` exceeds the k-th smallest ``l_i`` is pruned.

The network-distance bounds are evaluated over the anchor points inside
the uncertain region (the uncertain region restricted to the walking
graph), padded by one anchor spacing so the discretization can never
prune a true candidate.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

import repro.obs as obs
from repro.collector.collector import EventDrivenCollector
from repro.config import SimulationConfig
from repro.geometry import Circle, Point
from repro.graph.anchors import AnchorIndex
from repro.graph.location import GraphLocation
from repro.graph.walking_graph import WalkingGraph
from repro.queries.types import KNNQuery, RangeQuery
from repro.rfid.reader import RFIDReader


def uncertain_region(
    reader: RFIDReader, last_second: int, now: int, max_speed: float
) -> Circle:
    """``UR(o_i)``: where an object last seen at ``reader`` can be now."""
    if now < last_second:
        raise ValueError(
            f"query time {now} precedes last detection {last_second}"
        )
    l_max = max_speed * (now - last_second)
    return Circle(reader.position, l_max + reader.activation_range)


class QueryAwareOptimizer:
    """Candidate filtering for registered range and kNN queries."""

    def __init__(
        self,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers: Dict[str, RFIDReader],
        config: SimulationConfig,
    ):
        self.graph = graph
        self.anchor_index = anchor_index
        self.readers = dict(readers)
        self.config = config

    # ------------------------------------------------------------------
    def candidates(
        self,
        collector: EventDrivenCollector,
        now: int,
        range_queries: Sequence[RangeQuery] = (),
        knn_queries: Sequence[KNNQuery] = (),
    ) -> Set[str]:
        """The union of candidate sets over all registered queries."""
        with obs.span("prune.candidates"):
            result: Set[str] = set()
            objects = collector.observed_objects()
            regions = self._uncertain_regions(collector, objects, now)
            if range_queries:
                result |= self.range_candidates(regions, range_queries)
            for query in knn_queries:
                result |= self.knn_candidates(regions, query)
        if obs.enabled():
            # Pruning effectiveness (paper §4.3): of the objects the
            # collector has seen, how many survived into the candidate
            # set that particle filtering must process?
            obs.add("prune.rounds")
            obs.add("prune.objects_seen", len(regions))
            obs.add("prune.candidates_kept", len(result))
            obs.add("prune.objects_pruned", len(regions) - len(result))
        return result

    def _uncertain_regions(
        self, collector: EventDrivenCollector, objects: Iterable[str], now: int
    ) -> Dict[str, Circle]:
        regions: Dict[str, Circle] = {}
        for object_id in objects:
            detection = collector.last_detection(object_id)
            if detection is None:
                continue
            reader_id, last_second = detection
            regions[object_id] = uncertain_region(
                self.readers[reader_id], last_second, now, self.config.max_speed
            )
        return regions

    # ------------------------------------------------------------------
    def range_candidates(
        self, regions: Dict[str, Circle], queries: Sequence[RangeQuery]
    ) -> Set[str]:
        """Objects whose uncertain region overlaps at least one window."""
        return {
            object_id
            for object_id, region in regions.items()
            if any(region.intersects_rect(q.window) for q in queries)
        }

    def knn_candidates(
        self, regions: Dict[str, Circle], query: KNNQuery
    ) -> Set[str]:
        """Distance-based pruning for one kNN query (paper Eq. 6)."""
        if not regions:
            return set()
        q_loc, _ = self.graph.locate(query.point)
        bounds: Dict[str, Tuple[float, float]] = {}
        for object_id, region in regions.items():
            bound = self._distance_bounds(q_loc, query.point, region)
            if bound is not None:
                bounds[object_id] = bound

        if len(bounds) <= query.k:
            return set(bounds.keys())
        l_values = sorted(hi for _, hi in bounds.values())
        f = l_values[query.k - 1]
        return {
            object_id
            for object_id, (s_i, _) in bounds.items()
            if s_i <= f
        }

    def _distance_bounds(
        self, q_loc: GraphLocation, q_point: Point, region: Circle
    ) -> Optional[Tuple[float, float]]:
        """``(s_i, l_i)`` network-distance bounds to an uncertain region.

        ``s_i`` is floored by the Euclidean lower bound so that the anchor
        discretization can only loosen (never tighten) the pruning.
        """
        pad = self.anchor_index.spacing
        anchors = self.anchor_index.in_circle(region)
        if not anchors:
            # Degenerate region (tiny radius between anchors): fall back to
            # the nearest graph location of the region's center.
            loc, _ = self.graph.locate(region.center)
            dist = self.graph.distance(q_loc, loc)
            return dist, dist
        distances = [
            self.graph.distance(q_loc, ap.location) for ap in anchors
        ]
        euclid_floor = max(q_point.distance_to(region.center) - region.radius, 0.0)
        s_i = max(min(distances) - pad, euclid_floor, 0.0)
        l_i = max(distances) + pad
        return s_i, l_i
