"""Indoor kNN query evaluation (paper Algorithm 4).

Starting from the query point (approximated onto its nearest walking-graph
edge), anchor points are visited in ascending order of shortest network
distance, accumulating each visited anchor's indexed object probabilities,
until the total probability reaches ``k``. The returned set
``{(o_1, p_1), ...}`` has ``sum(p_i) >= k`` and at least ``k`` objects;
``p_i`` is the probability that ``o_i`` is in the kNN result.

The expansion is implemented as a Dijkstra search over the chain of
anchors along edges (node anchors bridge edges), which visits anchors in
exactly the ascending-distance order of the paper's per-frontier-segment
expansion while handling cycles and branches uniformly.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Dict, List, Set, Tuple

from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.index.hashtable import AnchorObjectTable
from repro.queries.types import KNNQuery, KNNResult


def evaluate_knn_query(
    query: KNNQuery,
    graph: WalkingGraph,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
) -> KNNResult:
    """Evaluate one kNN query over the filtered ``APtoObjHT`` table."""
    result = KNNResult(query.query_id)
    adjacency = anchor_index.neighbors()

    heap: List[Tuple[float, int]] = []
    for distance, ap_id in _seed_anchors(query, graph, anchor_index):
        heapq.heappush(heap, (distance, ap_id))

    visited: Set[int] = set()
    total = 0.0
    while heap:
        distance, ap_id = heapq.heappop(heap)
        if ap_id in visited:
            continue
        visited.add(ap_id)

        for object_id, probability in table.items_at(ap_id):
            result.probabilities[object_id] = (
                result.probabilities.get(object_id, 0.0) + probability
            )
            total += probability
        if total >= query.k:
            break

        for neighbor, gap in adjacency[ap_id]:
            if neighbor not in visited:
                heapq.heappush(heap, (distance + gap, neighbor))
    return result


def _seed_anchors(
    query: KNNQuery, graph: WalkingGraph, anchor_index: AnchorIndex
) -> List[Tuple[float, int]]:
    """The anchors bracketing the query point on its nearest edge."""
    q_loc, _ = graph.locate(query.point)
    ordered = anchor_index.on_edge(q_loc.edge_id)
    offsets = [off for off, _ in ordered]
    pos = bisect_left(offsets, q_loc.offset)

    seeds: Dict[int, float] = {}
    for index in (pos - 1, pos):
        if 0 <= index < len(ordered):
            offset, ap_id = ordered[index]
            gap = abs(offset - q_loc.offset)
            if ap_id not in seeds or gap < seeds[ap_id]:
                seeds[ap_id] = gap
    return [(gap, ap_id) for ap_id, gap in seeds.items()]
