"""Continuous query monitoring (paper Section 6, future work).

The paper evaluates snapshot queries and names continuous range and
continuous kNN queries as future work. This module adds them on top of
either engine: queries stay registered, the monitor re-evaluates them as
simulation time advances, and subscribers receive *deltas* — which
objects entered a result, which left, and whose probability changed
materially — instead of full result sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geometry import Point, Rect
from repro.queries.types import KNNQuery, RangeQuery
from repro.rng import RngLike


@dataclass
class ResultDelta:
    """Changes of one query's result between two evaluations.

    ``entered`` maps newly-qualified objects to their probability;
    ``left`` lists objects that dropped out; ``updated`` maps objects
    whose probability moved by at least the monitor's ``min_change``.
    """

    query_id: str
    second: int
    entered: Dict[str, float] = field(default_factory=dict)
    left: List[str] = field(default_factory=list)
    updated: Dict[str, float] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when nothing changed."""
        return not (self.entered or self.left or self.updated)


class ContinuousQueryMonitor:
    """Re-evaluates registered queries over time and emits result deltas.

    Works with both :class:`~repro.queries.engine.IndoorQueryEngine` and
    :class:`~repro.symbolic.engine.SymbolicQueryEngine` (they share the
    evaluate/register API).

    ``report_threshold`` is the probability below which an object is not
    considered part of a result at all; ``min_change`` is the minimum
    probability movement that is worth reporting for an object already in
    the result.
    """

    def __init__(
        self,
        engine,
        report_threshold: float = 0.05,
        min_change: float = 0.10,
    ):
        if not 0.0 <= report_threshold < 1.0:
            raise ValueError("report_threshold must be in [0, 1)")
        if min_change < 0.0:
            raise ValueError("min_change must be non-negative")
        self.engine = engine
        self.report_threshold = report_threshold
        self.min_change = min_change
        self._last_results: Dict[str, Dict[str, float]] = {}
        self._last_second: Optional[int] = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_range_query(self, query_id: str, window: Rect) -> None:
        """Start monitoring a range query."""
        self.engine.register_range_query(RangeQuery(query_id, window))
        self._last_results.setdefault(query_id, {})

    def add_knn_query(self, query_id: str, point: Point, k: int) -> None:
        """Start monitoring a kNN query."""
        self.engine.register_knn_query(KNNQuery(query_id, point, k))
        self._last_results.setdefault(query_id, {})

    def monitored_queries(self) -> List[str]:
        """Ids of all monitored queries."""
        return list(self._last_results.keys())

    def remove_query(self, query_id: str) -> bool:
        """Stop monitoring a query mid-stream.

        Unregisters it from the engine and drops its diff state, so a
        re-added query with the same id starts fresh (everything present
        reports as ``entered`` again). Returns True when the query was
        being monitored.
        """
        self.engine.unregister_query(query_id)
        return self._last_results.pop(query_id, None) is not None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def tick(self, now: int, rng: RngLike = None) -> List[ResultDelta]:
        """Evaluate all monitored queries at ``now`` and diff the results.

        Returns one (possibly empty) delta per monitored query. Seconds
        must be non-decreasing across ticks.
        """
        if self._last_second is not None and now < self._last_second:
            raise ValueError(
                f"tick at {now} precedes previous tick at {self._last_second}"
            )
        self._last_second = now
        snapshot = self.engine.evaluate(now, rng)

        deltas: List[ResultDelta] = []
        results: Dict[str, Dict[str, float]] = {}
        for query_id, result in snapshot.range_results.items():
            results[query_id] = result.probabilities
        for query_id, result in snapshot.knn_results.items():
            results[query_id] = result.probabilities

        for query_id, probabilities in results.items():
            current = {
                obj: p for obj, p in probabilities.items()
                if p >= self.report_threshold
            }
            previous = self._last_results.get(query_id, {})
            delta = ResultDelta(query_id=query_id, second=now)
            for obj, p in current.items():
                if obj not in previous:
                    delta.entered[obj] = p
                elif abs(p - previous[obj]) >= self.min_change:
                    delta.updated[obj] = p
            delta.left = sorted(obj for obj in previous if obj not in current)
            self._last_results[query_id] = current
            deltas.append(delta)
        return deltas

    def current_result(self, query_id: str) -> Dict[str, float]:
        """The last reported result of a monitored query."""
        return dict(self._last_results.get(query_id, {}))

    # ------------------------------------------------------------------
    # checkpoint support (repro.service.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The monitor's diff baseline as a JSON-safe dict."""
        return {
            "last_second": self._last_second,
            "last_results": {
                query_id: dict(results)
                for query_id, results in self._last_results.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore the diff baseline saved by :meth:`state_dict`.

        Without this, the first tick after a warm restart would re-report
        every object already in a result as freshly ``entered``.
        """
        last = state["last_second"]
        self._last_second = None if last is None else int(last)
        self._last_results = {
            query_id: {obj: float(p) for obj, p in results.items()}
            for query_id, results in state["last_results"].items()
        }
