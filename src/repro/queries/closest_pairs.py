"""Probabilistic closest-pairs queries (paper Section 6, future work).

Finds the ``m`` pairs of objects with the smallest *expected* shortest
network distance under the objects' anchor distributions:

    E[d(o_a, o_b)] = sum_{i,j} p_a(ap_i) * p_b(ap_j) * d(ap_i, ap_j)

Exact evaluation over all pairs is quadratic in objects times quadratic
in anchors per object, so the implementation prunes with the
mode-to-mode distance first: the expected distance of a pair can be
bounded below by the mode distance minus each distribution's spread
radius, which eliminates most pairs before the exact double sum.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.index.hashtable import AnchorObjectTable


@dataclass(frozen=True)
class PairResult:
    """One closest-pair answer: the pair and its expected distance."""

    object_a: str
    object_b: str
    expected_distance: float


def evaluate_closest_pairs(
    graph: WalkingGraph,
    anchor_index: AnchorIndex,
    table: AnchorObjectTable,
    m: int = 1,
    top_anchors: int = 8,
) -> List[PairResult]:
    """The ``m`` object pairs with the smallest expected network distance.

    ``top_anchors`` truncates each object's distribution to its most
    probable anchors (renormalized) before the exact expectation — the
    tail anchors of a particle cloud carry little mass but dominate the
    cost of the double sum.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if top_anchors < 1:
        raise ValueError(f"top_anchors must be >= 1, got {top_anchors}")

    objects = sorted(table.objects())
    if len(objects) < 2:
        return []

    truncated: Dict[str, List[Tuple[int, float]]] = {}
    spread: Dict[str, float] = {}
    mode: Dict[str, int] = {}
    for object_id in objects:
        distribution = sorted(
            table.distribution_of(object_id).items(), key=lambda kv: -kv[1]
        )[:top_anchors]
        total = sum(p for _, p in distribution)
        distribution = [(ap, p / total) for ap, p in distribution]
        truncated[object_id] = distribution
        mode[object_id] = distribution[0][0]
        mode_loc = anchor_index.anchor(distribution[0][0]).location
        spread[object_id] = max(
            graph.distance(mode_loc, anchor_index.anchor(ap).location)
            for ap, _ in distribution
        )

    # Phase 1: lower bounds from mode distances, cheapest first.
    candidates: List[Tuple[float, str, str]] = []
    for i, obj_a in enumerate(objects):
        loc_a = anchor_index.anchor(mode[obj_a]).location
        for obj_b in objects[i + 1:]:
            loc_b = anchor_index.anchor(mode[obj_b]).location
            mode_distance = graph.distance(loc_a, loc_b)
            lower = max(mode_distance - spread[obj_a] - spread[obj_b], 0.0)
            candidates.append((lower, obj_a, obj_b))
    candidates.sort()

    # Phase 2: exact expectation until the lower bounds exceed the m-th
    # best exact distance found so far.
    best: List[Tuple[float, str, str]] = []  # max-heap via negation
    for lower, obj_a, obj_b in candidates:
        if len(best) == m and lower >= -best[0][0]:
            break
        exact = _expected_distance(
            graph, anchor_index, truncated[obj_a], truncated[obj_b]
        )
        entry = (-exact, obj_a, obj_b)
        if len(best) < m:
            heapq.heappush(best, entry)
        elif exact < -best[0][0]:
            heapq.heapreplace(best, entry)

    ordered = sorted(((-d, a, b) for d, a, b in best))
    return [
        PairResult(object_a=a, object_b=b, expected_distance=d)
        for d, a, b in ordered
    ]


def _expected_distance(
    graph: WalkingGraph,
    anchor_index: AnchorIndex,
    dist_a: List[Tuple[int, float]],
    dist_b: List[Tuple[int, float]],
) -> float:
    total = 0.0
    for ap_a, p_a in dist_a:
        loc_a = anchor_index.anchor(ap_a).location
        for ap_b, p_b in dist_b:
            loc_b = anchor_index.anchor(ap_b).location
            total += p_a * p_b * graph.distance(loc_a, loc_b)
    return total
