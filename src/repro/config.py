"""Experiment configuration with the paper's default parameters.

Paper Table 2 (Section 5):

========================  =============
Parameter                 Default value
========================  =============
Number of particles       64
Query window size         2 %
Number of moving objects  200
k                         3
Activation range          2 meters
========================  =============

Additional simulation parameters (Sections 3.2, 4.2, 4.4, 5.1) are
collected here as well so that every stochastic component of the system is
driven by one explicit, serializable configuration object.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict, replace
from typing import Any, Dict


@dataclass(frozen=True)
class SimulationConfig:
    """All tunable parameters of the reproduction.

    The dataclass is frozen so configurations can be shared between modules
    without defensive copying; use :meth:`with_overrides` to derive variants
    for parameter sweeps.
    """

    # --- Table 2 defaults -------------------------------------------------
    num_particles: int = 64
    query_window_ratio: float = 0.02
    num_objects: int = 200
    k: int = 3
    activation_range: float = 2.0

    # --- object motion (Sections 3.2 and 5.1) -----------------------------
    speed_mean: float = 1.0
    speed_std: float = 0.1
    max_speed: float = 1.5
    room_exit_probability: float = 0.1
    door_entry_probability: float = 0.5
    # The paper's trace generator has no dwell: objects pick a new
    # destination immediately on arrival. Dwelling is available as an
    # extension (see the dwell ablation benchmark).
    min_dwell_seconds: float = 0.0
    max_dwell_seconds: float = 0.0

    # --- RFID sensing (Sections 1, 4.1) ------------------------------------
    samples_per_second: int = 10
    detection_probability: float = 0.85
    weight_hit: float = 0.9
    weight_miss: float = 0.01

    # --- models (Sections 4.2 and 4.4) -------------------------------------
    anchor_spacing: float = 1.0
    silence_cap_seconds: float = 60.0
    num_readers: int = 19

    # --- graph-Kalman filter backend (repro.filters.kalman) ------------------
    # Mixture size cap, random-acceleration noise density (m/s^2), and the
    # offset gap below which same-edge hypotheses are moment-matched into
    # one Gaussian. See DESIGN.md section 10 for the derivation.
    kalman_max_hypotheses: int = 12
    kalman_accel_std: float = 0.3
    kalman_merge_distance: float = 0.5

    # --- extensions (beyond the paper; see DESIGN.md) -----------------------
    # When enabled, silent seconds also reweight: a particle inside any
    # reader's range while no reading arrived is penalized by
    # ``negative_likelihood`` (the paper's Algorithm 2 skips silent
    # seconds entirely, which is the default here).
    use_negative_information: bool = False
    negative_likelihood: float = 0.01

    # --- simulation schedule (Section 5) ------------------------------------
    warmup_seconds: int = 60
    duration_seconds: int = 300
    num_query_timestamps: int = 10
    num_range_queries: int = 20
    num_knn_queries: int = 10

    # --- metrics ------------------------------------------------------------
    kl_epsilon: float = 0.01
    topk_tolerance: float = 2.0

    # --- observability (repro.obs) ------------------------------------------
    # When True, Simulation enables the process-local metrics registry and
    # span tracer (repro.obs) for the run. Off by default: every
    # instrumented call site is a guarded no-op, and recording never
    # touches any RNG, so enabling it cannot change results.
    observability: bool = False

    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_particles < 1:
            raise ValueError("num_particles must be >= 1")
        if not 0.0 < self.query_window_ratio <= 1.0:
            raise ValueError("query_window_ratio must be in (0, 1]")
        if self.num_objects < 1:
            raise ValueError("num_objects must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.activation_range <= 0:
            raise ValueError("activation_range must be positive")
        if self.speed_std < 0:
            raise ValueError("speed_std must be non-negative")
        if not 0.0 <= self.detection_probability <= 1.0:
            raise ValueError("detection_probability must be in [0, 1]")
        if not 0.0 <= self.room_exit_probability <= 1.0:
            raise ValueError("room_exit_probability must be in [0, 1]")
        if not 0.0 <= self.door_entry_probability <= 1.0:
            raise ValueError("door_entry_probability must be in [0, 1]")
        if self.anchor_spacing <= 0:
            raise ValueError("anchor_spacing must be positive")
        if self.weight_hit <= self.weight_miss:
            raise ValueError("weight_hit must exceed weight_miss")
        if not 0.0 < self.negative_likelihood <= 1.0:
            raise ValueError("negative_likelihood must be in (0, 1]")
        if self.kalman_max_hypotheses < 1:
            raise ValueError("kalman_max_hypotheses must be >= 1")
        if self.kalman_accel_std < 0:
            raise ValueError("kalman_accel_std must be non-negative")
        if self.kalman_merge_distance < 0:
            raise ValueError("kalman_merge_distance must be non-negative")

    def with_overrides(self, **overrides: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dict (for experiment records)."""
        return asdict(self)


DEFAULT_CONFIG = SimulationConfig()
"""The paper's Table 2 defaults, shared by examples, tests, and benchmarks."""
