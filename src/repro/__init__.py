"""repro — RFID and particle filter-based indoor spatial query evaluation.

A complete Python reproduction of Yu, Ku, Sun, and Lu, *"An RFID and
Particle Filter-Based Indoor Spatial Query Evaluation System"* (EDBT
2013): the particle filter-based location inference method, the indoor
walking graph and anchor point models, indoor range and kNN query
algorithms, the symbolic model baseline, and the full simulation framework
used for the paper's evaluation.

Quickstart::

    from repro import Simulation, DEFAULT_CONFIG

    sim = Simulation(DEFAULT_CONFIG.with_overrides(num_objects=50))
    sim.run_for(120)                               # simulate two minutes
    result = sim.pf_engine.range_query(            # who is in this room?
        sim.plan.room("R5").boundary, sim.now, rng=sim.pf_rng
    )
    print(result.top(5))
"""

import repro.obs as obs
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.floorplan import (
    FloorPlan,
    FloorPlanBuilder,
    paper_office_plan,
    small_test_plan,
)
from repro.geometry import Circle, Point, Polyline, Rect, Segment
from repro.graph import (
    AnchorIndex,
    AnchorPoint,
    GraphLocation,
    WalkingGraph,
    build_anchor_index,
    build_walking_graph,
)
from repro.index import AnchorObjectTable
from repro.queries import (
    IndoorQueryEngine,
    KNNQuery,
    KNNResult,
    RangeQuery,
    RangeResult,
)
from repro.rfid import DetectionModel, RFIDReader, RFIDTag, deploy_readers_uniform
from repro.sim import Simulation, evaluate_accuracy
from repro.symbolic import SymbolicQueryEngine

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SimulationConfig",
    "FloorPlan",
    "FloorPlanBuilder",
    "paper_office_plan",
    "small_test_plan",
    "Point",
    "Rect",
    "Circle",
    "Segment",
    "Polyline",
    "GraphLocation",
    "WalkingGraph",
    "AnchorIndex",
    "AnchorPoint",
    "build_walking_graph",
    "build_anchor_index",
    "AnchorObjectTable",
    "RangeQuery",
    "KNNQuery",
    "RangeResult",
    "KNNResult",
    "IndoorQueryEngine",
    "SymbolicQueryEngine",
    "RFIDReader",
    "RFIDTag",
    "DetectionModel",
    "deploy_readers_uniform",
    "Simulation",
    "evaluate_accuracy",
    "obs",
    "__version__",
]
