"""Per-second aggregation of raw readings (paper Section 4.1).

Readers sample tens of times per second, far more often than the particle
filter needs; aggregating to one entry per object per second saves storage
and suppresses false negatives (an object is recorded for a second as long
as at least one of its samples in that second succeeded).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, Mapping

import repro.obs as obs
from repro.rfid.readings import AggregatedReading, RawReading


def aggregate_second(
    second: int,
    raw_readings: Iterable[RawReading],
    tag_to_object: Mapping[str, str],
) -> Dict[str, AggregatedReading]:
    """Aggregate one second of raw readings into per-object entries.

    Readings outside ``[second, second + 1)`` are rejected (callers batch
    by second). When an object was sampled by multiple readers within the
    same second (possible during hand-off if ranges overlap), the reader
    with the most samples wins; ties break by reader id for determinism.
    """
    samples_per_object: Dict[str, Counter] = defaultdict(Counter)
    raw_count = 0
    unknown_count = 0
    for reading in raw_readings:
        if not second <= reading.time < second + 1:
            raise ValueError(
                f"reading at t={reading.time} does not belong to second {second}"
            )
        raw_count += 1
        object_id = tag_to_object.get(reading.tag_id)
        if object_id is None:
            # Unknown tag: a foreign tag wandered into the building; the
            # query system tracks only registered objects.
            unknown_count += 1
            continue
        samples_per_object[object_id][reading.reader_id] += 1

    aggregated: Dict[str, AggregatedReading] = {}
    for object_id, counts in samples_per_object.items():
        best_reader = min(
            counts.items(), key=lambda item: (-item[1], item[0])
        )[0]
        aggregated[object_id] = AggregatedReading(
            second=second, object_id=object_id, reader_id=best_reader
        )
    if obs.enabled():
        obs.add("collector.raw_readings", raw_count)
        obs.add("collector.unknown_tag_readings", unknown_count)
        obs.add("collector.aggregated_readings", len(aggregated))
        obs.observe("collector.raw_readings_per_second", raw_count)
    return aggregated
