"""ENTER/LEAVE observation events.

The paper defines events as "the object either entering (ENTER event) or
leaving (LEAVE event) the reading range of an RFID reader" (Section 4.1).
Events are derived from the aggregated per-second entries: an ENTER is the
first second of a device run, a LEAVE the last.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class EventKind(Enum):
    """Whether an object entered or left a reader's range."""

    ENTER = "enter"
    LEAVE = "leave"


@dataclass(frozen=True)
class ObservationEvent:
    """One ENTER or LEAVE event of an object at a reader."""

    kind: EventKind
    object_id: str
    reader_id: str
    second: int
