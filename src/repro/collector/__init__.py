"""Event-driven raw data collector (paper Section 4.1).

The collector is the front end of the system: it aggregates raw readings
into one entry per object per second, derives ENTER/LEAVE events, and
retains only the readings of the two most recent consecutive detecting
devices per object (all the particle filter needs to infer direction and
speed).
"""

from repro.collector.events import EventKind, ObservationEvent
from repro.collector.aggregator import aggregate_second
from repro.collector.collector import DeviceRun, EventDrivenCollector, ReadingHistory

__all__ = [
    "EventKind",
    "ObservationEvent",
    "aggregate_second",
    "DeviceRun",
    "EventDrivenCollector",
    "ReadingHistory",
]
