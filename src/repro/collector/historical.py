"""Historical reading retention (paper Section 4.1, last paragraph).

"For systems which are required to answer historical queries, the data
collector module needs to be modified accordingly to keep a longer
reading history." This collector keeps *every* device run per object and
can reconstruct, for any past second, exactly the two-device
:class:`~repro.collector.collector.ReadingHistory` the snapshot collector
would have served at that moment — so the particle filter and query
algorithms run unchanged against any point in the past.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.collector.collector import DeviceRun, EventDrivenCollector, ReadingHistory


class HistoricalCollector(EventDrivenCollector):
    """A collector that never forgets.

    Extends the event-driven collector with full run retention and
    time-travel accessors. Memory grows linearly with distinct device
    transitions, which is the cost the paper's snapshot design avoids.
    """

    def __init__(self, tag_to_object, max_runs: int = 2):
        super().__init__(tag_to_object, max_runs=max_runs)
        self._all_runs: Dict[str, List[DeviceRun]] = {}
        self._generation_history: Dict[str, List[Tuple[int, int]]] = {}

    def _ingest_entry(self, entry) -> None:
        runs = self._all_runs.setdefault(entry.object_id, [])
        starting_new_run = not runs or runs[-1].reader_id != entry.reader_id
        if starting_new_run:
            runs.append(DeviceRun(reader_id=entry.reader_id, seconds=[]))
        runs[-1].add(entry.second)
        super()._ingest_entry(entry)
        if starting_new_run:
            self._generation_history.setdefault(entry.object_id, []).append(
                (entry.second, self.device_generation(entry.object_id))
            )

    # ------------------------------------------------------------------
    # time travel
    # ------------------------------------------------------------------
    def history_as_of(self, object_id: str, second: int) -> ReadingHistory:
        """The retained history as the snapshot collector saw it at ``second``.

        Runs are truncated to readings at or before ``second``; only the
        two most recent (non-empty) runs survive, mirroring the live
        retention policy.
        """
        truncated: List[DeviceRun] = []
        for run in self._all_runs.get(object_id, []):
            seconds = [s for s in run.seconds if s <= second]
            if seconds:
                truncated.append(DeviceRun(run.reader_id, seconds))
        return ReadingHistory(
            object_id=object_id, runs=tuple(truncated[-self._max_runs:])
        )

    def last_detection_as_of(
        self, object_id: str, second: int
    ) -> Optional[Tuple[str, int]]:
        """``(reader_id, second)`` of the most recent detection <= ``second``."""
        history = self.history_as_of(object_id, second)
        if history.is_empty:
            return None
        return history.latest_reader_id, history.last_second

    def observed_objects_as_of(self, second: int) -> List[str]:
        """Objects with at least one reading at or before ``second``."""
        return [
            object_id
            for object_id, runs in self._all_runs.items()
            if runs and runs[0].seconds and runs[0].seconds[0] <= second
        ]

    def full_runs(self, object_id: str) -> List[DeviceRun]:
        """Every device run of an object, oldest first (copies)."""
        return [
            DeviceRun(run.reader_id, list(run.seconds))
            for run in self._all_runs.get(object_id, [])
        ]

    def as_of_view(self, second: int) -> "_AsOfView":
        """A read-only collector facade pinned to ``second``.

        Implements the subset of the collector interface the optimizer
        and preprocessing modules use (``observed_objects``, ``history``,
        ``last_detection``, ``device_generation``), answering everything
        as of the pinned time — so the unmodified engine pipeline can
        evaluate queries in the past.
        """
        return _AsOfView(self, second)


class _AsOfView:
    """Read-only time-pinned facade over a :class:`HistoricalCollector`."""

    def __init__(self, collector: HistoricalCollector, second: int):
        self._collector = collector
        self._second = second

    def observed_objects(self) -> List[str]:
        return self._collector.observed_objects_as_of(self._second)

    def history(self, object_id: str) -> ReadingHistory:
        return self._collector.history_as_of(object_id, self._second)

    def last_detection(self, object_id: str) -> Optional[Tuple[str, int]]:
        return self._collector.last_detection_as_of(object_id, self._second)

    def device_generation(self, object_id: str) -> int:
        # Generations are only meaningful for cache validity; historical
        # evaluation bypasses the cache, so a constant is sufficient and
        # guarantees no stale-state reuse.
        del object_id
        return -1
