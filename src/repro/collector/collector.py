"""The event-driven raw data collector module (paper Section 4.1).

Per object, the collector stores aggregated readings only for the two most
recent consecutive detecting devices ("readings during the most recent
ENTER, LEAVE, ENTER events"): when an object enters the range of a third
device, the oldest device's readings are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import repro.obs as obs
from repro.collector.aggregator import aggregate_second
from repro.collector.events import EventKind, ObservationEvent
from repro.rfid.readings import AggregatedReading, RawReading, ReadingEntry


@dataclass
class DeviceRun:
    """A maximal stretch of seconds during which one device detected an object.

    ``seconds`` need not be contiguous: false negatives can blank
    individual seconds inside a run without ending it (the run only ends
    when a *different* device detects the object).
    """

    reader_id: str
    seconds: List[int] = field(default_factory=list)

    @property
    def first_second(self) -> int:
        """The ENTER second of the run."""
        return self.seconds[0]

    @property
    def last_second(self) -> int:
        """The most recent detection second of the run."""
        return self.seconds[-1]

    def add(self, second: int) -> None:
        """Record one more detected second."""
        if self.seconds and second <= self.seconds[-1]:
            raise ValueError(
                f"seconds must be ingested in order; got {second} after "
                f"{self.seconds[-1]}"
            )
        self.seconds.append(second)


@dataclass(frozen=True)
class ReadingHistory:
    """What the particle filter sees for one object: up to two device runs.

    ``runs`` is ordered oldest first. The filter starts at the first
    second of the older run and replays per-second entries up to the last
    detection (paper Algorithm 2, lines 2-4).
    """

    object_id: str
    runs: Tuple[DeviceRun, ...]

    @property
    def is_empty(self) -> bool:
        """True when the object has never been detected."""
        return not self.runs

    @property
    def first_second(self) -> int:
        """``t0``: the start of the retained readings."""
        return self.runs[0].first_second

    @property
    def last_second(self) -> int:
        """``td``: the most recent detection second."""
        return self.runs[-1].last_second

    @property
    def previous_reader_id(self) -> Optional[str]:
        """``d_i``: the second most recent device (None with one run)."""
        return self.runs[0].reader_id if len(self.runs) == 2 else None

    @property
    def latest_reader_id(self) -> str:
        """``d_j``: the most recent detecting device."""
        return self.runs[-1].reader_id

    @property
    def initial_reader_id(self) -> str:
        """The device whose range seeds the particle cloud (the older run)."""
        return self.runs[0].reader_id

    def entries(self) -> List[ReadingEntry]:
        """Per-second entries from ``t0`` to ``td`` inclusive.

        Seconds with no detection yield ``reader_id=None`` — Algorithm 2
        skips reweighting on those.
        """
        detected: Dict[int, str] = {}
        for run in self.runs:
            for second in run.seconds:
                detected[second] = run.reader_id
        return [
            ReadingEntry(second=s, reader_id=detected.get(s))
            for s in range(self.first_second, self.last_second + 1)
        ]

    def reading_at(self, second: int) -> Optional[str]:
        """The detecting device at ``second``, or None."""
        for run in self.runs:
            if second in run.seconds:
                return run.reader_id
        return None


class EventDrivenCollector:
    """Stores and serves per-object reading histories.

    Feed it raw readings second by second with :meth:`ingest_second`; it
    aggregates them, maintains the two-device retention policy, and
    derives ENTER/LEAVE events.
    """

    def __init__(self, tag_to_object: Mapping[str, str], max_runs: int = 2):
        if max_runs < 1:
            raise ValueError("max_runs must be >= 1")
        self._tag_to_object = dict(tag_to_object)
        self._max_runs = max_runs
        self._runs: Dict[str, List[DeviceRun]] = {}
        self._events: List[ObservationEvent] = []
        self._last_ingested_second: Optional[int] = None
        self._generation: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def register_tags(self, tag_to_object: Mapping[str, str]) -> None:
        """Add (or update) tag-to-object mappings.

        Supports populations that change over time (arrival scenarios):
        tags registered here are recognized by subsequent ingests;
        readings from unknown tags are ignored.
        """
        self._tag_to_object.update(tag_to_object)

    def knows_tag(self, tag_id: str) -> bool:
        """True when a tag is registered (its readings are not ignored)."""
        return tag_id in self._tag_to_object

    def ingest_second(self, second: int, raw_readings: Iterable[RawReading]) -> None:
        """Aggregate and store one second of raw readings."""
        if self._last_ingested_second is not None and second <= self._last_ingested_second:
            raise ValueError(
                f"seconds must be ingested in increasing order; got {second} "
                f"after {self._last_ingested_second}"
            )
        self._last_ingested_second = second
        aggregated = aggregate_second(second, raw_readings, self._tag_to_object)
        for object_id, entry in aggregated.items():
            self._ingest_entry(entry)
        if obs.enabled():
            obs.add("collector.seconds_ingested")
            obs.gauge_set("collector.objects_tracked", len(self._runs))

    def _ingest_entry(self, entry: AggregatedReading) -> None:
        runs = self._runs.setdefault(entry.object_id, [])
        if runs and runs[-1].reader_id == entry.reader_id:
            runs[-1].add(entry.second)
            return
        # A new device run begins: emit LEAVE for the previous run and
        # ENTER for the new one, then enforce the retention policy.
        if runs:
            previous = runs[-1]
            self._events.append(
                ObservationEvent(
                    EventKind.LEAVE, entry.object_id, previous.reader_id,
                    previous.last_second,
                )
            )
            obs.add("collector.leave_events")
        self._events.append(
            ObservationEvent(
                EventKind.ENTER, entry.object_id, entry.reader_id, entry.second
            )
        )
        obs.add("collector.enter_events")
        runs.append(DeviceRun(reader_id=entry.reader_id, seconds=[entry.second]))
        if len(runs) > self._max_runs:
            del runs[: len(runs) - self._max_runs]
        self._generation[entry.object_id] = (
            self._generation.get(entry.object_id, 0) + 1
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def history(self, object_id: str) -> ReadingHistory:
        """The retained reading history of an object (possibly empty)."""
        runs = self._runs.get(object_id, [])
        return ReadingHistory(object_id=object_id, runs=tuple(runs))

    def last_detection(self, object_id: str) -> Optional[Tuple[str, int]]:
        """``(reader_id, second)`` of the most recent detection, or None."""
        runs = self._runs.get(object_id)
        if not runs:
            return None
        last = runs[-1]
        return last.reader_id, last.last_second

    def device_generation(self, object_id: str) -> int:
        """Counter bumped whenever the object is seen by a *new* device.

        The cache-management module invalidates its stored particle state
        when this changes (paper Section 4.5).
        """
        return self._generation.get(object_id, 0)

    def observed_objects(self) -> List[str]:
        """All objects with at least one retained reading."""
        return list(self._runs.keys())

    def events(self) -> List[ObservationEvent]:
        """All ENTER/LEAVE events emitted so far, in order."""
        return list(self._events)

    def events_for(self, object_id: str) -> List[ObservationEvent]:
        """Events of one object, in order."""
        return [e for e in self._events if e.object_id == object_id]

    # ------------------------------------------------------------------
    # checkpoint support (repro.service.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full collector state as a JSON-safe dict.

        Captures everything :meth:`restore_state` needs to resume
        ingestion mid-stream with identical behavior: retained device
        runs, device generations, the event log, the tag registry, and
        the last ingested second.
        """
        return {
            "max_runs": self._max_runs,
            "last_ingested_second": self._last_ingested_second,
            "tag_to_object": dict(self._tag_to_object),
            "generations": dict(self._generation),
            "runs": {
                object_id: [
                    {"reader_id": run.reader_id, "seconds": list(run.seconds)}
                    for run in runs
                ]
                for object_id, runs in self._runs.items()
            },
            "events": [
                {
                    "kind": event.kind.value,
                    "object_id": event.object_id,
                    "reader_id": event.reader_id,
                    "second": event.second,
                }
                for event in self._events
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite this collector's state from :meth:`state_dict` output."""
        self._max_runs = int(state["max_runs"])
        last = state["last_ingested_second"]
        self._last_ingested_second = None if last is None else int(last)
        self._tag_to_object = dict(state["tag_to_object"])
        self._generation = {
            obj: int(gen) for obj, gen in state["generations"].items()
        }
        self._runs = {
            object_id: [
                DeviceRun(
                    reader_id=run["reader_id"],
                    seconds=[int(s) for s in run["seconds"]],
                )
                for run in runs
            ]
            for object_id, runs in state["runs"].items()
        }
        self._events = [
            ObservationEvent(
                EventKind(event["kind"]),
                event["object_id"],
                event["reader_id"],
                int(event["second"]),
            )
            for event in state["events"]
        ]
