"""Benchmark regression gate.

A small, deterministic benchmark harness behind ``repro bench``:

* :func:`repro.bench.suite.run_suite` executes a fixed set of seeded
  pipeline workloads and records, per workload, the wall-clock cost
  *and* an integer work profile (filter runs, seconds replayed, objects
  evaluated, ...) read from the :mod:`repro.obs` registry;
* :func:`repro.bench.compare.compare_results` diffs two result files:
  work counters must match **exactly** (seeded runs are deterministic,
  so any drift is a real behavior change), while wall timings are first
  normalized by a calibration-kernel ratio so the gate measures *this
  code on this machine* against *that code on that machine* without
  flaking on hardware differences.

The package intentionally lives outside the invariant linter's CLK/DET
scopes: benchmarks are the one place that legitimately reads the wall
clock directly.
"""

from repro.bench.compare import (
    ComparisonReport,
    compare_results,
    load_result,
    render_report,
)
from repro.bench.suite import (
    RESULT_FORMAT,
    RESULT_VERSION,
    default_result_name,
    run_suite,
    write_result,
)

__all__ = [
    "ComparisonReport",
    "RESULT_FORMAT",
    "RESULT_VERSION",
    "compare_results",
    "default_result_name",
    "load_result",
    "render_report",
    "run_suite",
    "write_result",
]
