"""The ``repro bench compare`` regression gate.

Compares a candidate result file against a committed baseline:

* **work counters** — compared exactly. Seeded runs are deterministic,
  so a changed counter means the code now does different work (more
  filter runs, fewer cache hits, ...) — a behavior change that must be
  acknowledged by re-recording the baseline, never waved through.
* **wall timings** — normalized first: each file's workload times are
  divided by that file's calibration-kernel seconds, and the gate
  compares the *ratios*. A baseline recorded on a fast laptop therefore
  does not fail CI on a slow runner. A workload regresses when its
  normalized time exceeds ``tolerance`` × the baseline's.
* **digests** — bit-identity over query answers; informational by
  default (float bit-patterns may legitimately differ across CPUs and
  numpy builds), enforced with ``strict_digest=True``.

Exit-code contract (used by CI): 0 pass, 1 regression, 2 the files are
not comparable (different format, profile, or workload set).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.bench.suite import RESULT_FORMAT, RESULT_VERSION

#: Default slowdown tolerance: candidate may take up to 1.5x the
#: baseline's calibration-normalized time before the gate fails. Wide on
#: purpose — the smoke workloads run for seconds, where scheduler noise
#: is a real fraction; the exact work-counter check catches algorithmic
#: regressions long before they show up as 50% wall time.
DEFAULT_TOLERANCE = 1.5

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INCOMPARABLE = 2


class BenchFormatError(ValueError):
    """The file is not a bench result document this build understands."""


def load_result(path: str) -> Dict[str, object]:
    """Load and validate one bench result file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != RESULT_FORMAT:
        raise BenchFormatError(
            f"{path}: not a {RESULT_FORMAT} document"
        )
    if int(str(data.get("version", 0))) > RESULT_VERSION:
        raise BenchFormatError(
            f"{path}: result version {data.get('version')} is newer than "
            f"this build understands ({RESULT_VERSION}); update the code "
            "or re-record with this build"
        )
    return data


@dataclass
class WorkloadComparison:
    """The gate's verdict on one workload."""

    name: str
    baseline_seconds: float
    candidate_seconds: float
    normalized_ratio: float
    timing_ok: bool
    work_ok: bool
    digest_match: bool
    work_diffs: List[str] = field(default_factory=list)


@dataclass
class ComparisonReport:
    """The full gate verdict: per-workload rows plus the exit code."""

    tolerance: float
    strict_digest: bool
    rows: List[WorkloadComparison] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    incomparable: bool = False

    @property
    def passed(self) -> bool:
        return not self.incomparable and not self.problems

    @property
    def exit_code(self) -> int:
        if self.incomparable:
            return EXIT_INCOMPARABLE
        return EXIT_OK if self.passed else EXIT_REGRESSION


def _workloads(result: Mapping[str, object]) -> Dict[str, Dict[str, object]]:
    workloads = result.get("workloads")
    if not isinstance(workloads, dict):
        raise BenchFormatError("result document has no 'workloads' mapping")
    return workloads


def compare_results(
    baseline: Mapping[str, object],
    candidate: Mapping[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    strict_digest: bool = False,
) -> ComparisonReport:
    """Gate ``candidate`` against ``baseline``; see the module docstring."""
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    report = ComparisonReport(tolerance=tolerance, strict_digest=strict_digest)

    for key in ("profile", "seed"):
        if baseline.get(key) != candidate.get(key):
            report.problems.append(
                f"{key} mismatch: baseline={baseline.get(key)!r} "
                f"candidate={candidate.get(key)!r}"
            )
            report.incomparable = True
    base_workloads = _workloads(baseline)
    cand_workloads = _workloads(candidate)
    if set(base_workloads) != set(cand_workloads):
        only_base = sorted(set(base_workloads) - set(cand_workloads))
        only_cand = sorted(set(cand_workloads) - set(base_workloads))
        report.problems.append(
            f"workload sets differ (baseline-only={only_base}, "
            f"candidate-only={only_cand}); re-record the baseline"
        )
        report.incomparable = True
    if report.incomparable:
        return report

    base_calibration = float(str(baseline.get("calibration_seconds", 0.0)))
    cand_calibration = float(str(candidate.get("calibration_seconds", 0.0)))
    if base_calibration <= 0 or cand_calibration <= 0:
        report.problems.append("calibration_seconds missing or non-positive")
        report.incomparable = True
        return report

    for name in sorted(base_workloads):
        base = base_workloads[name]
        cand = cand_workloads[name]
        base_seconds = float(str(base.get("wall_seconds", 0.0)))
        cand_seconds = float(str(cand.get("wall_seconds", 0.0)))
        base_norm = base_seconds / base_calibration
        cand_norm = cand_seconds / cand_calibration
        ratio = cand_norm / base_norm if base_norm > 0 else float("inf")
        timing_ok = ratio <= tolerance

        base_work = base.get("work") or {}
        cand_work = cand.get("work") or {}
        work_diffs: List[str] = []
        if not isinstance(base_work, dict) or not isinstance(cand_work, dict):
            work_diffs.append("work profile missing")
        else:
            for counter in sorted(set(base_work) | set(cand_work)):
                base_value = base_work.get(counter)
                cand_value = cand_work.get(counter)
                if base_value != cand_value:
                    work_diffs.append(
                        f"{counter}: baseline={base_value} candidate={cand_value}"
                    )
        work_ok = not work_diffs
        digest_match = base.get("digest") == cand.get("digest")

        row = WorkloadComparison(
            name=name,
            baseline_seconds=base_seconds,
            candidate_seconds=cand_seconds,
            normalized_ratio=ratio,
            timing_ok=timing_ok,
            work_ok=work_ok,
            digest_match=digest_match,
            work_diffs=work_diffs,
        )
        report.rows.append(row)
        if not timing_ok:
            report.problems.append(
                f"{name}: {ratio:.2f}x normalized slowdown exceeds "
                f"tolerance {tolerance:.2f}x"
            )
        if not work_ok:
            report.problems.append(
                f"{name}: work profile changed ({'; '.join(work_diffs)})"
            )
        if strict_digest and not digest_match:
            report.problems.append(
                f"{name}: answer digest changed "
                f"({base.get('digest')} -> {cand.get('digest')})"
            )
    return report


def render_report(report: ComparisonReport) -> str:
    """Human-readable gate verdict (what CI prints)."""
    lines: List[str] = []
    lines.append(
        f"bench gate: tolerance {report.tolerance:.2f}x"
        + (", strict digests" if report.strict_digest else "")
    )
    for row in report.rows:
        status = "ok" if (row.timing_ok and row.work_ok) else "FAIL"
        digest_note = "match" if row.digest_match else "differ"
        lines.append(
            f"  {row.name:<16} {status:<4} "
            f"ratio={row.normalized_ratio:.2f}x "
            f"({row.baseline_seconds:.3f}s -> {row.candidate_seconds:.3f}s), "
            f"work={'exact' if row.work_ok else 'CHANGED'}, "
            f"digests {digest_note}"
        )
        for diff in row.work_diffs:
            lines.append(f"      {diff}")
    if report.problems:
        lines.append("problems:")
        for problem in report.problems:
            lines.append(f"  - {problem}")
    lines.append("verdict: " + ("PASS" if report.passed else "FAIL"))
    return "\n".join(lines)
