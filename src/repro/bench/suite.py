"""The ``repro bench run`` workload suite.

Each workload is a seeded end-to-end slice of the pipeline. Running one
produces three kinds of evidence:

* ``wall_seconds`` — elapsed wall clock, for the tolerance-gated timing
  comparison (always normalized by the calibration kernel first);
* ``work`` — a fixed set of **integer** counters read from the
  :mod:`repro.obs` registry after the run. Seeded runs are
  bit-deterministic, so these are compared exactly by the gate: any
  drift means the code does different work, not that the machine was
  slow;
* ``digest`` — a SHA-256 over the canonical query answers (rounded to
  nine decimals), for optional strict bit-identity checks on a single
  platform.

Two profiles: ``smoke`` (seconds, runs in CI on every push) and ``full``
(minutes, for local before/after measurements).
"""

from __future__ import annotations

import datetime as _datetime
import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

import repro.obs as obs
from repro import __version__
from repro.config import DEFAULT_CONFIG, SimulationConfig

RESULT_FORMAT = "repro-bench-result"
RESULT_VERSION = 1

PROFILES = ("smoke", "full")


@dataclass(frozen=True)
class WorkloadResult:
    """One workload's evidence: timing, integer work profile, digest.

    ``stats`` carries machine-dependent derived measurements (throughput,
    tail latency) for humans and dashboards; the compare gate ignores it
    — only ``work`` is compared exactly and only ``wall_seconds`` is
    tolerance-gated.
    """

    name: str
    wall_seconds: float
    work: Dict[str, int]
    digest: str
    stats: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "work": dict(sorted(self.work.items())),
            "digest": self.digest,
        }
        if self.stats:
            document["stats"] = dict(sorted(self.stats.items()))
        return document


def _profile_config(profile: str, seed: int) -> SimulationConfig:
    if profile == "full":
        return DEFAULT_CONFIG.with_overrides(
            seed=seed, num_objects=60, observability=False
        )
    return DEFAULT_CONFIG.with_overrides(
        seed=seed, num_objects=16, observability=False
    )


def _digest(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _counter_work(names: Tuple[str, ...]) -> Dict[str, int]:
    """Read the named counter families (label-summed) as exact integers."""
    registry = obs.registry()
    return {name: int(registry.counter_total(name)) for name in names}


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def calibration_kernel_seconds(repeats: int = 3) -> float:
    """Time a fixed numpy kernel; the cross-machine speed yardstick.

    The gate divides each workload's wall time by this number before
    comparing against the baseline, so a baseline recorded on a fast
    machine does not fail the gate on a slow one (and vice versa). The
    kernel mixes the operations the pipeline leans on: dense arithmetic,
    cumulative sums, sorting, and searchsorted.
    """
    rng = np.random.default_rng(12345)
    weights = rng.random(200_000)
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        w = weights.copy()
        for _ in range(20):
            w = w * 1.000001 + 0.5
            c = np.cumsum(w)
            c /= c[-1]
            positions = (np.arange(w.size) + 0.5) / w.size
            idx = np.searchsorted(c, positions)
            w = np.sort(w[np.clip(idx, 0, w.size - 1)])
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _bench_filter_replay(profile: str, seed: int) -> WorkloadResult:
    """Batch pipeline: simulate, ingest, filter, answer queries."""
    from repro.queries.types import KNNQuery, RangeQuery
    from repro.sim import Simulation

    config = _profile_config(profile, seed)
    seconds = 60 if profile == "full" else 25
    eval_points = (30, 45, 60) if profile == "full" else (15, 25)

    sim = Simulation(config, build_symbolic=False)
    answers: List[Tuple[str, str, float]] = []
    obs.enable(fresh=True)
    try:
        start = time.perf_counter()
        for timestamp in eval_points:
            sim.run_until(timestamp)
            windows = sim.random_windows(3)
            points = sim.random_query_points(2)
            sim.pf_engine.clear_queries()
            for i, window in enumerate(windows):
                sim.pf_engine.register_range_query(RangeQuery(f"r{i}", window))
            for i, point in enumerate(points):
                sim.pf_engine.register_knn_query(KNNQuery(f"k{i}", point, 3))
            snapshot = sim.pf_engine.evaluate(timestamp, rng=sim.pf_rng)
            for result in snapshot.range_results.values():
                for obj, p in sorted(result.probabilities.items()):
                    answers.append((result.query_id, obj, round(p, 9)))
            for result in snapshot.knn_results.values():
                for obj, p in sorted(result.probabilities.items()):
                    answers.append((result.query_id, obj, round(p, 9)))
        elapsed = time.perf_counter() - start
        work = _counter_work(
            (
                "filter.runs",
                "filter.seconds_replayed",
                "filter.observations",
                "engine.rounds",
                "engine.objects_evaluated",
            )
        )
    finally:
        obs.disable()
    work["answers"] = len(answers)
    work["sim_seconds"] = seconds if profile == "full" else eval_points[-1]
    return WorkloadResult(
        name="filter_replay",
        wall_seconds=elapsed,
        work=work,
        digest=_digest(answers),
    )


def _bench_service_replay(profile: str, seed: int) -> WorkloadResult:
    """Online service: sharded thread-mode replay of a recorded log."""
    from repro.geometry import Point, Rect
    from repro.service import ReplaySource, TrackingService
    from repro.sim import Simulation

    config = _profile_config(profile, seed)
    seconds = 40 if profile == "full" else 15

    sim = Simulation(config, build_symbolic=False)
    readings = []
    for _ in range(seconds):
        readings.extend(sim.step())

    obs.enable(fresh=True)
    deltas = 0
    try:
        service = TrackingService(config, num_shards=2, mode="thread", seed=seed)
        try:
            service.sessions.subscribe_range(Rect(4, 0, 30, 12), session_id="r0")
            service.sessions.subscribe_knn(Point(30, 5), 3, session_id="k0")
            start = time.perf_counter()
            for batch in ReplaySource(readings).batches():
                deltas += len(service.process_batch(batch))
            elapsed = time.perf_counter() - start
            tracked = len(service.snapshot().table.objects())
            rows: List[Tuple[str, int, float]] = []
            table = service.snapshot().table
            for obj in sorted(table.objects()):
                for anchor, p in sorted(table.distribution_of(obj).items()):
                    rows.append((obj, anchor, round(p, 9)))
        finally:
            service.close()
        work = _counter_work(
            ("filter.runs", "filter.backend_runs", "service.shard_objects_filtered")
        )
    finally:
        obs.disable()
    work["ticks"] = seconds
    work["deltas"] = deltas
    work["tracked"] = tracked
    return WorkloadResult(
        name="service_replay",
        wall_seconds=elapsed,
        work=work,
        digest=_digest(rows),
    )


def _bench_query_eval(profile: str, seed: int) -> WorkloadResult:
    """Query evaluation over a fixed filtered table (read-path cost)."""
    from repro.queries.types import KNNQuery, RangeQuery
    from repro.sim import Simulation

    config = _profile_config(profile, seed)
    horizon = 30 if profile == "full" else 12
    rounds = 20 if profile == "full" else 6

    sim = Simulation(config, build_symbolic=False)
    sim.run_until(horizon)
    windows = sim.random_windows(4)
    points = sim.random_query_points(3)

    obs.enable(fresh=True)
    try:
        sim.pf_engine.clear_queries()
        for i, window in enumerate(windows):
            sim.pf_engine.register_range_query(RangeQuery(f"r{i}", window))
        for i, point in enumerate(points):
            sim.pf_engine.register_knn_query(KNNQuery(f"k{i}", point, 3))
        matched = 0
        start = time.perf_counter()
        for _ in range(rounds):
            snapshot = sim.pf_engine.evaluate(horizon, rng=sim.pf_rng)
            for result in snapshot.range_results.values():
                matched += len(result.objects())
            for result in snapshot.knn_results.values():
                matched += len(result.probabilities)
        elapsed = time.perf_counter() - start
        work = _counter_work(("engine.rounds", "engine.queries"))
    finally:
        obs.disable()
    work["matched"] = matched
    work["rounds"] = rounds
    return WorkloadResult(
        name="query_eval",
        wall_seconds=elapsed,
        work=work,
        digest=_digest(matched),
    )


def _bench_profiler_overhead(profile: str, seed: int) -> WorkloadResult:
    """Disabled-path cost of the observability layer.

    Hammers the exact guard path every instrumented hot-path call site
    pays while observability is off: a counter add, a timer, and a span,
    interleaved with a little real arithmetic so the guards are measured
    in context rather than in a tight guard-only loop. The profiler
    itself adds no call sites beyond these, so this workload is the
    regression gate for the "≤1% overhead when disabled" budget.
    """
    iterations = 600_000 if profile == "full" else 120_000
    obs.disable()  # the budget under test is the *disabled* path
    checksum = seed
    start = time.perf_counter()
    for index in range(iterations):
        obs.add("bench.guard")
        with obs.timer("bench.guard_timer"):
            checksum = (checksum * 31 + index) % 1_000_003
        with obs.span("bench.guard_span"):
            checksum = (checksum ^ (index << 1)) % 1_000_003
    elapsed = time.perf_counter() - start
    return WorkloadResult(
        name="profiler_overhead",
        wall_seconds=elapsed,
        work={"iterations": iterations, "checksum": checksum},
        digest=_digest([iterations, checksum]),
    )


def _bench_analytics_replay(profile: str, seed: int) -> WorkloadResult:
    """Incremental analytics maintenance over a recorded snapshot stream.

    Replays the same stream through both maintenance strategies: the
    delta-maintained :class:`AnalyticsEngine` (whose time is the gated
    ``wall_seconds``) and the full-refold :class:`NaiveAnalytics`
    reference, which serves as an equivalence cross-check — its flow
    tally is a gated integer counter and its occupancy must agree with
    the engine's (checked here, loudly). The naive side's wall time is
    machine-dependent and deliberately kept out of the exact-compare
    work profile; run ``repro bench run --full`` locally to eyeball the
    incremental-vs-recompute throughput gap.
    """
    from repro.analytics import AnalyticsEngine, NaiveAnalytics
    from repro.service import ReplaySource, TrackingService
    from repro.sim import Simulation

    config = _profile_config(profile, seed)
    seconds = 50 if profile == "full" else 18

    sim = Simulation(config, build_symbolic=False)
    readings = []
    for _ in range(seconds):
        readings.extend(sim.step())

    # Record the published snapshots once, outside the timed region.
    snapshots = []
    with TrackingService(config, seed=seed) as service:
        for batch in ReplaySource(readings).batches():
            service.process_batch(batch)
            snapshots.append(service.snapshot())
        plan, anchors = service.plan, service.anchor_index

    engine = AnalyticsEngine(plan, anchors)
    start = time.perf_counter()
    for snapshot in snapshots:
        engine.observe_snapshot(snapshot)
    elapsed = time.perf_counter() - start

    naive = NaiveAnalytics(plan, anchors)
    for snapshot in snapshots:
        naive.observe_snapshot(snapshot)

    # Equivalence is part of the workload's contract: the incremental
    # aggregates must match both the naive replay and a full recompute
    # of the final table (failing loudly beats a cryptic digest drift).
    engine.self_check(snapshots[-1].table)
    for region in engine.region_map.regions:
        gap = abs(engine.occupancy_of(region)[0] - naive.occupancy[region])
        if gap > 1e-6:
            raise AssertionError(
                f"incremental vs naive occupancy drift in {region}: {gap}"
            )
    occupancy = {
        region: round(engine.occupancy_of(region)[0], 9)
        for region in engine.region_map.regions
    }
    work = {
        "epochs": engine.epochs,
        "updates": engine.updates,
        "flow_events": engine.flow_events,
        "naive_flow_events": naive.flow_events,
    }
    return WorkloadResult(
        name="analytics_replay",
        wall_seconds=elapsed,
        work=work,
        digest=_digest(occupancy),
    )


def _bench_gateway_throughput(profile: str, seed: int) -> WorkloadResult:
    """Multi-tenant gateway serving: queries/sec, tail latency, telemetry tax.

    Stands up a partitioned gateway (inline transport — the forked
    transport is bit-identical, and forking would make the timing
    measure process spawn instead of serving), streams N tenants'
    simulated seconds through the fan-out/fan-in path, then hammers the
    read path with alternating range/kNN queries round-robin across
    tenants. The same deterministic batches are served twice: once with
    telemetry disabled (that pass's wall clock is the gated
    ``wall_seconds``, so the "observability off costs ~nothing" budget
    is what regresses the gate) and once with telemetry enabled (the
    source of the exact-compare work counters, which do not depend on
    the obs switch, plus the enabled-path queries-per-second). Both
    passes must produce byte-identical answers — the bench itself
    enforces the telemetry bit-identity invariant. Query answers are
    seeded-deterministic and digested; derived throughput, latency, and
    the enabled/disabled overhead ratio land in ``stats``, outside the
    exact-compare gate (they measure the machine, not the code's work
    profile).
    """
    from repro.gateway import GatewayCoordinator, TenantWorld, demo_tenants
    from repro.geometry import Point, Rect
    from repro.service.ingest import LiveSimSource
    from repro.sim import Simulation

    tenants = 3 if profile == "full" else 2
    objects = 12 if profile == "full" else 6
    seconds = 20 if profile == "full" else 8
    queries = 600 if profile == "full" else 120
    partitions = 4 if profile == "full" else 2

    specs = demo_tenants(tenants, base_seed=seed, num_objects=objects, plan="small")
    batches = {}
    for spec in specs:
        world = TenantWorld(spec)
        sim = Simulation(
            world.config, plan=world.plan, readers=world.readers,
            build_symbolic=False,
        )
        batches[spec.tenant_id] = list(LiveSimSource(sim, seconds).batches())
    bounds = {spec.tenant_id: TenantWorld(spec).plan.bounds for spec in specs}

    def serve() -> Tuple[float, float, List[Tuple[str, str, str, float]], List[float]]:
        answers: List[Tuple[str, str, str, float]] = []
        latencies: List[float] = []
        coordinator = GatewayCoordinator(
            specs, num_partitions=partitions, transport="inline"
        )
        try:
            start = time.perf_counter()
            for tick in range(seconds):
                for spec in specs:
                    coordinator.submit_tick(
                        spec.tenant_id, batches[spec.tenant_id][tick]
                    )
                for _ in specs:
                    coordinator.collect_tick()
            ingest_elapsed = time.perf_counter() - start

            query_start = time.perf_counter()
            for index in range(queries):
                spec = specs[index % len(specs)]
                box = bounds[spec.tenant_id]
                min_x, min_y, max_x, max_y = box.min_x, box.min_y, box.max_x, box.max_y
                q_start = time.perf_counter()
                if index % 2 == 0:
                    result = coordinator.query_range(
                        spec.tenant_id,
                        Rect(min_x, min_y, (min_x + max_x) / 2, max_y),
                        query_id=f"r{index}",
                    )
                else:
                    result = coordinator.query_knn(
                        spec.tenant_id,
                        Point((min_x + max_x) / 2, (min_y + max_y) / 2),
                        3,
                        query_id=f"k{index}",
                    )
                latencies.append(time.perf_counter() - q_start)
                for obj, p in sorted(result.probabilities.items()):
                    answers.append((spec.tenant_id, result.query_id, obj, round(p, 9)))
            query_elapsed = time.perf_counter() - query_start
        finally:
            coordinator.close()
        return ingest_elapsed, query_elapsed, answers, latencies

    # Pass 1 — telemetry off: the gated cost of the serving path itself.
    obs.disable()
    ingest_elapsed, query_elapsed, answers, latencies = serve()

    # Pass 2 — telemetry on: work counters + the instrumented path's tax.
    obs.enable(fresh=True)
    try:
        on_ingest, on_query, on_answers, _ = serve()
        work = _counter_work(("gateway.ticks", "gateway.subticks", "gateway.queries"))
    finally:
        obs.disable()
    if on_answers != answers:
        raise AssertionError(
            "telemetry changed gateway answers: the obs switch must be inert"
        )
    work["tenants"] = tenants
    work["partitions"] = partitions
    work["answers"] = len(answers)
    ordered = sorted(latencies)
    off_elapsed = ingest_elapsed + query_elapsed
    on_elapsed = on_ingest + on_query
    stats = {
        "ingest_seconds": round(ingest_elapsed, 6),
        "queries_per_second": round(queries / query_elapsed, 3),
        "p50_latency_ms": round(1000 * ordered[len(ordered) // 2], 6),
        "p99_latency_ms": round(
            1000 * ordered[min(len(ordered) - 1, (99 * len(ordered)) // 100)], 6
        ),
        "telemetry_queries_per_second": round(queries / on_query, 3),
        "telemetry_overhead_ratio": round(
            on_elapsed / off_elapsed if off_elapsed > 0 else 1.0, 4
        ),
    }
    return WorkloadResult(
        name="gateway_throughput",
        wall_seconds=off_elapsed,
        work=work,
        digest=_digest(answers),
        stats=stats,
    )


_WORKLOADS: Tuple[Tuple[str, Callable[[str, int], WorkloadResult]], ...] = (
    ("filter_replay", _bench_filter_replay),
    ("service_replay", _bench_service_replay),
    ("query_eval", _bench_query_eval),
    ("profiler_overhead", _bench_profiler_overhead),
    ("analytics_replay", _bench_analytics_replay),
    ("gateway_throughput", _bench_gateway_throughput),
)


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------
def run_suite(profile: str = "smoke", seed: int = 7) -> Dict[str, object]:
    """Run every workload and return the result document."""
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    was_enabled = obs.enabled()
    calibration = calibration_kernel_seconds()
    results: List[WorkloadResult] = []
    for _name, fn in _WORKLOADS:
        results.append(fn(profile, seed))
    if was_enabled:
        # run_suite toggles the global registry per workload; restore the
        # caller's observability session rather than leaving it off.
        obs.enable(fresh=False)
    return {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "repro_version": __version__,
        "profile": profile,
        "seed": seed,
        "created": _datetime.datetime.now(_datetime.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "calibration_seconds": calibration,
        "workloads": {r.name: r.as_dict() for r in results},
    }


def default_result_name(when: _datetime.date | None = None) -> str:
    """The versioned artifact name: ``BENCH_YYYY-MM-DD.json``."""
    day = when if when is not None else _datetime.date.today()
    return f"BENCH_{day.isoformat()}.json"


def write_result(result: Mapping[str, object], path: str) -> str:
    """Write a result document as stable, diff-friendly JSON."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
