"""Scenario generators: populations that change over time.

The paper's evaluation keeps a fixed population walking from the first
second. Its motivating settings (Section 1 — subway stations, malls)
have people *arriving and leaving*: the tracking system must cope with
objects it has never observed and objects whose readings went stale
because they left. :class:`ArrivalTraceGenerator` extends the true trace
generator with an arrival schedule and optional departures through entry
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.geometry import Point
from repro.graph.routing import plan_route
from repro.graph.walking_graph import WalkingGraph
from repro.rng import RngLike
from repro.sim.objects import MovingObject
from repro.sim.trace import TrueTraceGenerator


@dataclass(frozen=True)
class ArrivalEvent:
    """``count`` objects entering at ``second`` through an entry point."""

    second: int
    count: int

    def __post_init__(self) -> None:
        if self.second < 0:
            raise ValueError("second must be non-negative")
        if self.count < 1:
            raise ValueError("count must be >= 1")


class ArrivalTraceGenerator(TrueTraceGenerator):
    """True traces with staggered arrivals (and optional departures).

    ``entry_points`` are 2-D positions (snapped to the walking graph)
    where newcomers appear — typically hallway ends near building doors.
    ``departure_after`` (seconds, optional) makes each object head back
    to an entry point once its time is up and vanish on arrival.
    """

    def __init__(
        self,
        graph: WalkingGraph,
        config: SimulationConfig,
        arrivals: Sequence[ArrivalEvent],
        entry_points: Sequence[Point],
        rng: RngLike = None,
        departure_after: Optional[int] = None,
    ):
        if not entry_points:
            raise ValueError("at least one entry point is required")
        if departure_after is not None and departure_after < 1:
            raise ValueError("departure_after must be >= 1 when given")
        # Start with an empty population; arrivals add everyone.
        super().__init__(graph, config, rng=rng, num_objects=0)
        self._entry_locations = [graph.locate(p)[0] for p in entry_points]
        self._arrivals = sorted(arrivals, key=lambda a: a.second)
        self._next_arrival = 0
        self._spawned = 0
        self.departure_after = departure_after
        self._entered_at: Dict[str, int] = {}
        self._leaving: Dict[str, bool] = {}
        self.departed: List[str] = []

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one second: arrivals, walks, departures."""
        super().step()
        self._spawn_due_arrivals()
        if self.departure_after is not None:
            self._process_departures()

    def _spawn_due_arrivals(self) -> None:
        while (
            self._next_arrival < len(self._arrivals)
            and self._arrivals[self._next_arrival].second <= self.now
        ):
            event = self._arrivals[self._next_arrival]
            for _ in range(event.count):
                self._spawned += 1
                entry = self._entry_locations[
                    self._rng.integers(0, len(self._entry_locations))
                ]
                obj = MovingObject(
                    object_id=f"o{self._spawned}",
                    tag_id=f"tag{self._spawned}",
                    location=entry,
                )
                self._assign_destination(obj)
                self.objects.append(obj)
                self._entered_at[obj.object_id] = self.now
            self._next_arrival += 1

    def _process_departures(self) -> None:
        remaining: List[MovingObject] = []
        for obj in self.objects:
            age = self.now - self._entered_at.get(obj.object_id, self.now)
            if self._leaving.get(obj.object_id):
                # Heading out: gone once the exit route is finished.
                if obj.is_dwelling or (
                    obj.route is not None
                    and obj.progress >= obj.route.total_length
                ):
                    self.departed.append(obj.object_id)
                    continue
            elif age >= self.departure_after:
                self._leaving[obj.object_id] = True
                exit_loc = self._entry_locations[
                    self._rng.integers(0, len(self._entry_locations))
                ]
                exit_point = self.graph.point_of(exit_loc)
                exit_edge = self.graph.edge(exit_loc.edge_id)
                # Route to the nearer endpoint node of the exit location's
                # edge (entry points sit on hallway ends).
                target = (
                    exit_edge.node_a
                    if exit_loc.offset < exit_edge.length / 2
                    else exit_edge.node_b
                )
                obj.route = plan_route(self.graph, obj.location, target)
                obj.progress = 0.0
                obj.dwell_until = 0
                obj.destination_room = None
                del exit_point
            remaining.append(obj)
        self.objects[:] = remaining

    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        """Objects currently inside the building."""
        return len(self.objects)

    @property
    def total_spawned(self) -> int:
        """Objects that ever entered."""
        return self._spawned


def rush_hour_arrivals(
    start: int, duration: int, total: int, burst_every: int = 5
) -> List[ArrivalEvent]:
    """A simple rush-hour schedule: even bursts over ``duration`` seconds."""
    if total < 1:
        raise ValueError("total must be >= 1")
    if duration < 1 or burst_every < 1:
        raise ValueError("duration and burst_every must be >= 1")
    bursts = max(duration // burst_every, 1)
    base = total // bursts
    remainder = total - base * bursts
    events = []
    for i in range(bursts):
        count = base + (1 if i < remainder else 0)
        if count > 0:
            events.append(ArrivalEvent(second=start + i * burst_every, count=count))
    return events
