"""The complete simulator (paper Figure 8).

Wires the true trace generator, the raw reading generator, the particle
filter engine, the symbolic model engine, and ground truth together. The
two query engines consume the *same* raw reading stream, and accuracy is
judged against the same true traces.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.core.resampling import systematic_resample
from repro.floorplan.plan import FloorPlan
from repro.floorplan.presets import paper_office_plan
from repro.geometry import Point, Rect
from repro.graph.anchors import build_anchor_index
from repro.graph.location import GraphLocation
from repro.graph.walking_graph import build_walking_graph
from repro.queries.engine import IndoorQueryEngine
from repro.rfid.deployment import deploy_readers_uniform
from repro.rfid.reader import RFIDReader
from repro.rng import child_rng
from repro.sim.readings_sim import RawReadingGenerator
from repro.sim.trace import TrueTraceGenerator
from repro.symbolic.engine import SymbolicQueryEngine


class Simulation:
    """One fully-wired simulation run over the paper's office floor."""

    def __init__(
        self,
        config: SimulationConfig = DEFAULT_CONFIG,
        plan: Optional[FloorPlan] = None,
        readers: Optional[Sequence[RFIDReader]] = None,
        use_cache: bool = True,
        use_pruning: bool = True,
        resampler=systematic_resample,
        build_symbolic: bool = True,
    ):
        self.config = config
        self.plan = plan if plan is not None else paper_office_plan()
        self.graph = build_walking_graph(self.plan)
        self.anchor_index = build_anchor_index(self.graph, config.anchor_spacing)
        self.readers = (
            list(readers)
            if readers is not None
            else deploy_readers_uniform(
                self.plan, config.num_readers, config.activation_range
            )
        )

        self.trace = TrueTraceGenerator(
            self.graph, config, rng=child_rng(config.seed, "trace")
        )
        self.reading_generator = RawReadingGenerator(
            self.readers,
            detection_probability=config.detection_probability,
            samples_per_second=config.samples_per_second,
            rng=child_rng(config.seed, "readings"),
        )

        tag_to_object = self.trace.tag_to_object()
        self.pf_engine = IndoorQueryEngine(
            self.plan,
            self.readers,
            tag_to_object,
            config=config,
            graph=self.graph,
            anchor_index=self.anchor_index,
            use_cache=use_cache,
            use_pruning=use_pruning,
            resampler=resampler,
        )
        self.sm_engine = (
            SymbolicQueryEngine(
                self.plan,
                self.readers,
                tag_to_object,
                config=config,
                graph=self.graph,
                anchor_index=self.anchor_index,
                use_pruning=use_pruning,
            )
            if build_symbolic
            else None
        )

        self.pf_rng = child_rng(config.seed, "pf")
        self._query_rng = child_rng(config.seed, "queries")

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """The current simulated second."""
        return self.trace.now

    def run_until(self, second: int) -> None:
        """Advance the world (traces + readings + both collectors)."""
        while self.trace.now < second:
            self.trace.step()
            readings = self.reading_generator.generate(
                self.trace.now, self.trace.tag_positions()
            )
            self.pf_engine.ingest_second(self.trace.now, readings)
            if self.sm_engine is not None:
                self.sm_engine.ingest_second(self.trace.now, readings)

    def run_for(self, seconds: int) -> None:
        """Advance by a relative number of seconds."""
        self.run_until(self.trace.now + seconds)

    # ------------------------------------------------------------------
    # truth accessors
    # ------------------------------------------------------------------
    def true_positions(self) -> Dict[str, Point]:
        """Current true 2-D positions by object id."""
        return self.trace.positions()

    def true_locations(self) -> Dict[str, GraphLocation]:
        """Current true graph locations by object id."""
        return self.trace.locations()

    # ------------------------------------------------------------------
    # random query placement (paper Section 5.2 / 5.3)
    # ------------------------------------------------------------------
    def random_window(self, area_ratio: Optional[float] = None) -> Rect:
        """A random square query window of the configured relative area."""
        ratio = area_ratio if area_ratio is not None else self.config.query_window_ratio
        bounds = self.plan.bounds
        side = math.sqrt(ratio * bounds.area)
        side = min(side, bounds.width, bounds.height)
        x = self._query_rng.uniform(bounds.min_x, bounds.max_x - side)
        y = self._query_rng.uniform(bounds.min_y, bounds.max_y - side)
        return Rect(x, y, x + side, y + side)

    def random_query_point(self) -> Point:
        """A random indoor location on the walking graph."""
        edges = self.graph.edges
        lengths = [e.length for e in edges]
        total = sum(lengths)
        draw = self._query_rng.uniform(0.0, total)
        consumed = 0.0
        for edge, length in zip(edges, lengths):
            consumed += length
            if draw <= consumed:
                return edge.point_at(draw - (consumed - length))
        return edges[-1].point_at(lengths[-1])

    def random_windows(self, count: int, area_ratio: Optional[float] = None) -> List[Rect]:
        """``count`` random windows."""
        return [self.random_window(area_ratio) for _ in range(count)]

    def random_query_points(self, count: int) -> List[Point]:
        """``count`` random query points."""
        return [self.random_query_point() for _ in range(count)]
