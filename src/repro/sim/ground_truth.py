"""Ground truth query evaluation (paper Section 5.1).

Evaluates range and kNN queries directly against the true object
locations recorded by the trace generator, forming the basis for the
accuracy metrics.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from repro.geometry import Point, Rect
from repro.graph.location import GraphLocation
from repro.graph.walking_graph import WalkingGraph


def true_range_result(window: Rect, positions: Mapping[str, Point]) -> Set[str]:
    """Objects whose true position lies inside the query window."""
    return {
        object_id
        for object_id, position in positions.items()
        if window.contains(position)
    }


def true_knn_result(
    query_point: Point,
    locations: Mapping[str, GraphLocation],
    graph: WalkingGraph,
    k: int,
) -> List[str]:
    """The true k nearest objects by shortest network distance.

    The query point is snapped to the walking graph first, matching how
    the probabilistic methods interpret it. Ties break by object id so
    the ground truth is deterministic.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    q_loc, _ = graph.locate(query_point)
    ranked = sorted(
        locations.items(),
        key=lambda item: (graph.distance(q_loc, item[1]), item[0]),
    )
    return [object_id for object_id, _ in ranked[:k]]


def true_nearest_distances(
    query_point: Point,
    locations: Mapping[str, GraphLocation],
    graph: WalkingGraph,
) -> Dict[str, float]:
    """Network distance from the query point to every object."""
    q_loc, _ = graph.locate(query_point)
    return {
        object_id: graph.distance(q_loc, location)
        for object_id, location in locations.items()
    }
