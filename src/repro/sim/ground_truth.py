"""Ground truth query evaluation (paper Section 5.1).

Evaluates range and kNN queries directly against the true object
locations recorded by the trace generator, forming the basis for the
accuracy metrics.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from repro.floorplan.plan import FloorPlan
from repro.geometry import Point, Rect
from repro.graph.location import GraphLocation
from repro.graph.walking_graph import WalkingGraph

#: Region key pooling every position outside all rooms (must match
#: ``repro.analytics.regions.HALLWAYS``; kept literal to avoid a
#: sim → analytics dependency).
HALLWAY_REGION = "__hallways__"


def true_range_result(window: Rect, positions: Mapping[str, Point]) -> Set[str]:
    """Objects whose true position lies inside the query window."""
    return {
        object_id
        for object_id, position in positions.items()
        if window.contains(position)
    }


def true_room_counts(
    plan: FloorPlan, positions: Mapping[str, Point]
) -> Dict[str, float]:
    """True object count per room, plus one pooled hallway bucket.

    Each object lands in the first room (plan order) containing its true
    position, or in :data:`HALLWAY_REGION` when no room does. Every room
    appears in the result even at count zero, so comparisons against
    estimated occupancy never miss an empty room.
    """
    counts: Dict[str, float] = {room.room_id: 0.0 for room in plan.rooms}
    counts[HALLWAY_REGION] = 0.0
    for _, position in sorted(positions.items()):
        for room in plan.rooms:
            if room.contains(position):
                counts[room.room_id] += 1.0
                break
        else:
            counts[HALLWAY_REGION] += 1.0
    return counts


def true_knn_result(
    query_point: Point,
    locations: Mapping[str, GraphLocation],
    graph: WalkingGraph,
    k: int,
) -> List[str]:
    """The true k nearest objects by shortest network distance.

    The query point is snapped to the walking graph first, matching how
    the probabilistic methods interpret it. Ties break by object id so
    the ground truth is deterministic.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    q_loc, _ = graph.locate(query_point)
    ranked = sorted(
        locations.items(),
        key=lambda item: (graph.distance(q_loc, item[1]), item[0]),
    )
    return [object_id for object_id, _ in ranked[:k]]


def true_nearest_distances(
    query_point: Point,
    locations: Mapping[str, GraphLocation],
    graph: WalkingGraph,
) -> Dict[str, float]:
    """Network distance from the query point to every object."""
    q_loc, _ = graph.locate(query_point)
    return {
        object_id: graph.distance(q_loc, location)
        for object_id, location in locations.items()
    }
