"""Parameter sweeps reproducing every figure of the paper's Section 5.

Each ``run_figureN`` function sweeps the figure's x-axis parameter and
returns one row per sweep value with the measured metrics; the benchmark
harness prints these as the series the paper plots:

* Figure 9  — range-query KL divergence vs query window size;
* Figure 10 — kNN average hit rate vs k;
* Figure 11 — KL / hit rate / top-k success vs number of particles;
* Figure 12 — the same three metrics vs number of moving objects;
* Figure 13 — the same three metrics vs reader activation range.

``evaluate_accuracy`` runs one full simulation at one configuration and
measures every requested metric, averaging over query locations and
timestamps exactly like the paper's methodology (Section 5.2: "100 query
windows ... results averaged over 50 different time stamps" — the counts
are configurable to keep the default harness laptop-friendly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

import repro.obs as obs
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.filters.registry import BackendSpec
from repro.queries.types import KNNQuery, RangeQuery
from repro.sim.ground_truth import true_knn_result, true_range_result
from repro.sim.metrics import knn_hit_rate, mean_of, range_query_kl, top_k_success
from repro.sim.simulator import Simulation


@dataclass
class AccuracyReport:
    """All accuracy metrics of one simulated configuration."""

    config: SimulationConfig
    range_kl_pf: Optional[float] = None
    range_kl_sm: Optional[float] = None
    knn_hit_pf: Optional[float] = None
    knn_hit_sm: Optional[float] = None
    top1_success: Optional[float] = None
    top2_success: Optional[float] = None
    range_query_count: int = 0
    knn_query_count: int = 0
    topk_sample_count: int = 0

    def as_row(self, **extra) -> Dict[str, object]:
        """Flatten into a table row (metrics rounded for printing)."""
        row: Dict[str, object] = dict(extra)
        for name in (
            "range_kl_pf",
            "range_kl_sm",
            "knn_hit_pf",
            "knn_hit_sm",
            "top1_success",
            "top2_success",
        ):
            value = getattr(self, name)
            row[name] = None if value is None else round(value, 4)
        return row


def query_timestamps(config: SimulationConfig) -> List[int]:
    """Evenly spaced evaluation timestamps after warm-up."""
    start = config.warmup_seconds
    end = config.warmup_seconds + config.duration_seconds
    points = np.linspace(start, end, config.num_query_timestamps)
    return sorted(set(int(round(p)) for p in points))


def evaluate_accuracy(
    config: SimulationConfig,
    measure_range: bool = True,
    measure_knn: bool = True,
    measure_topk: bool = True,
    simulation: Optional[Simulation] = None,
    filter_backend: BackendSpec = "particle",
) -> AccuracyReport:
    """Run one simulation and measure the requested metrics.

    The object universe for every metric is the set of objects the
    collector has observed at evaluation time (after warm-up this is all
    objects); ground truth is restricted to the same universe so P and Q
    compare like for like. ``filter_backend`` selects the estimator the
    probabilistic engine runs (it is ignored when an existing
    ``simulation`` is passed in — that simulation's engine is reused).
    """
    sim = (
        simulation
        if simulation is not None
        else Simulation(config, filter_backend=filter_backend)
    )
    report = AccuracyReport(config=config)

    kl_pf: List[Optional[float]] = []
    kl_sm: List[Optional[float]] = []
    hit_pf: List[float] = []
    hit_sm: List[float] = []
    top1: List[bool] = []
    top2: List[bool] = []

    for timestamp in query_timestamps(config):
        with obs.timer("experiment.advance_world"):
            sim.run_until(timestamp)
        positions = sim.true_positions()
        locations = sim.true_locations()
        universe = set(sim.pf_engine.collector.observed_objects())
        if not universe:
            continue

        windows = (
            sim.random_windows(config.num_range_queries) if measure_range else []
        )
        points = (
            sim.random_query_points(config.num_knn_queries) if measure_knn else []
        )

        sim.pf_engine.clear_queries()
        sim.sm_engine.clear_queries()
        range_queries = [
            RangeQuery(f"r{i}", window) for i, window in enumerate(windows)
        ]
        knn_queries = [
            KNNQuery(f"k{i}", point, config.k) for i, point in enumerate(points)
        ]
        for query in range_queries:
            sim.pf_engine.register_range_query(query)
            sim.sm_engine.register_range_query(query)
        for query in knn_queries:
            sim.pf_engine.register_knn_query(query)
            sim.sm_engine.register_knn_query(query)

        with obs.timer("experiment.pf_evaluate"):
            pf_snapshot = sim.pf_engine.evaluate(timestamp, rng=sim.pf_rng)
        with obs.timer("experiment.sm_evaluate"):
            sm_snapshot = sim.sm_engine.evaluate(timestamp)

        known_positions = {
            obj: pos for obj, pos in positions.items() if obj in universe
        }
        known_locations = {
            obj: loc for obj, loc in locations.items() if obj in universe
        }

        for query in range_queries:
            truth = true_range_result(query.window, known_positions)
            kl_pf.append(
                range_query_kl(
                    truth,
                    pf_snapshot.range_results[query.query_id].probabilities,
                    universe,
                    epsilon=config.kl_epsilon,
                )
            )
            kl_sm.append(
                range_query_kl(
                    truth,
                    sm_snapshot.range_results[query.query_id].probabilities,
                    universe,
                    epsilon=config.kl_epsilon,
                )
            )

        for query in knn_queries:
            truth = true_knn_result(query.point, known_locations, sim.graph, config.k)
            if not truth:
                continue
            pf_returned = pf_snapshot.knn_results[query.query_id].objects()
            sm_returned = sm_snapshot.knn_results[query.query_id].top(config.k)
            hit_pf.append(knn_hit_rate(pf_returned, truth))
            hit_sm.append(knn_hit_rate(sm_returned, truth))

        if measure_topk:
            with obs.timer("experiment.topk_snapshot"):
                table = sim.pf_engine.locations_snapshot(
                    timestamp, rng=sim.pf_rng
                )
            for object_id in sorted(universe):
                distribution = table.distribution_of(object_id)
                truth_point = positions[object_id]
                top1.append(
                    top_k_success(
                        distribution, truth_point, sim.anchor_index, 1,
                        tolerance=config.topk_tolerance,
                    )
                )
                top2.append(
                    top_k_success(
                        distribution, truth_point, sim.anchor_index, 2,
                        tolerance=config.topk_tolerance,
                    )
                )

    report.range_kl_pf = mean_of(kl_pf)
    report.range_kl_sm = mean_of(kl_sm)
    report.knn_hit_pf = mean_of(hit_pf) if hit_pf else None
    report.knn_hit_sm = mean_of(hit_sm) if hit_sm else None
    report.top1_success = (sum(top1) / len(top1)) if top1 else None
    report.top2_success = (sum(top2) / len(top2)) if top2 else None
    report.range_query_count = len(kl_pf)
    report.knn_query_count = len(hit_pf)
    report.topk_sample_count = len(top1)
    return report


# ----------------------------------------------------------------------
# figure sweeps
# ----------------------------------------------------------------------
FIGURE9_WINDOW_RATIOS = (0.01, 0.02, 0.03, 0.04, 0.05)
FIGURE10_KS = (2, 3, 4, 5, 6, 7, 8, 9)
FIGURE11_PARTICLES = (2, 4, 8, 16, 32, 64, 128, 256, 512)
FIGURE12_OBJECTS = (200, 400, 600, 800, 1000)
FIGURE13_RANGES = (0.5, 1.0, 1.5, 2.0, 2.5)


def run_figure9(
    config: SimulationConfig = DEFAULT_CONFIG,
    window_ratios: Sequence[float] = FIGURE9_WINDOW_RATIOS,
    filter_backend: BackendSpec = "particle",
) -> List[Dict[str, object]]:
    """Figure 9: effects of query window size on range-query KL."""
    rows = []
    for ratio in window_ratios:
        report = evaluate_accuracy(
            config.with_overrides(query_window_ratio=ratio),
            measure_knn=False,
            measure_topk=False,
            filter_backend=filter_backend,
        )
        rows.append(report.as_row(window_ratio=ratio))
    return rows


def run_figure10(
    config: SimulationConfig = DEFAULT_CONFIG,
    ks: Sequence[int] = FIGURE10_KS,
    filter_backend: BackendSpec = "particle",
) -> List[Dict[str, object]]:
    """Figure 10: effects of k on kNN average hit rate."""
    rows = []
    for k in ks:
        report = evaluate_accuracy(
            config.with_overrides(k=k),
            measure_range=False,
            measure_topk=False,
            filter_backend=filter_backend,
        )
        rows.append(report.as_row(k=k))
    return rows


def run_figure11(
    config: SimulationConfig = DEFAULT_CONFIG,
    particle_counts: Sequence[int] = FIGURE11_PARTICLES,
    filter_backend: BackendSpec = "particle",
) -> List[Dict[str, object]]:
    """Figure 11: effects of the number of particles (all three metrics)."""
    rows = []
    for count in particle_counts:
        report = evaluate_accuracy(
            config.with_overrides(num_particles=count),
            filter_backend=filter_backend,
        )
        rows.append(report.as_row(num_particles=count))
    return rows


def run_figure12(
    config: SimulationConfig = DEFAULT_CONFIG,
    object_counts: Sequence[int] = FIGURE12_OBJECTS,
    filter_backend: BackendSpec = "particle",
) -> List[Dict[str, object]]:
    """Figure 12: effects of the number of moving objects."""
    rows = []
    for count in object_counts:
        report = evaluate_accuracy(
            config.with_overrides(num_objects=count),
            filter_backend=filter_backend,
        )
        rows.append(report.as_row(num_objects=count))
    return rows


def run_figure13(
    config: SimulationConfig = DEFAULT_CONFIG,
    activation_ranges: Sequence[float] = FIGURE13_RANGES,
    filter_backend: BackendSpec = "particle",
) -> List[Dict[str, object]]:
    """Figure 13: effects of the reader activation range."""
    rows = []
    for activation_range in activation_ranges:
        report = evaluate_accuracy(
            config.with_overrides(activation_range=activation_range),
            filter_backend=filter_backend,
        )
        rows.append(report.as_row(activation_range=activation_range))
    return rows


DEFAULT_COMPARISON_BACKENDS = ("particle", "kalman", "symbolic")


def run_backend_comparison(
    config: SimulationConfig = DEFAULT_CONFIG,
    backends: Sequence[str] = DEFAULT_COMPARISON_BACKENDS,
) -> List[Dict[str, object]]:
    """Head-to-head accuracy and wall-time of the filter backends.

    Every backend sees the identical world: the trajectory and reading
    generation are seeded by the config, not by the estimator, so the
    rows differ only in how each backend turns the same readings into
    posteriors. Wall-time covers the full evaluation loop (filter runs
    plus query evaluation) and is measured with the observability clock
    so the sweep stays legal inside the CLK-linted simulation package.
    """
    rows = []
    for backend in backends:
        stopwatch = obs.stopwatch()
        with stopwatch:
            report = evaluate_accuracy(config, filter_backend=backend)
        rows.append(
            report.as_row(
                backend=backend,
                elapsed_s=round(stopwatch.total, 3),
            )
        )
    return rows


def format_rows(rows: List[Dict[str, object]], title: str = "") -> str:
    """Render sweep rows as an aligned text table (for bench output)."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)
