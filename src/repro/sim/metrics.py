"""Accuracy metrics (paper Section 5.1).

Three metrics, exactly as the paper's evaluation:

1. **KL divergence** for range queries — distance between the ground
   truth result distribution and a probabilistic method's result
   distribution (Eq. 7). The paper does not spell out how a result set
   becomes a distribution; we use: ground truth P uniform over the true
   result set; method Q = per-object in-window probabilities, epsilon
   smoothed over the object universe and normalized. Lower is better.
2. **kNN average hit rate** — overlap of the returned object set with the
   true kNN set, divided by k.
3. **Top-k success rate** — fraction of objects whose true location
   "matches" one of the k most probable anchor points of the
   reconstructed distribution; a match means the true position lies
   within ``tolerance`` meters of the anchor (see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence, Set

from repro.geometry import Point
from repro.graph.anchors import AnchorIndex


def kl_divergence(
    p: Mapping[str, float], q: Mapping[str, float], epsilon: float = 1e-12
) -> float:
    """``D_KL(P || Q) = sum_i P(i) ln(P(i) / Q(i))`` (paper Eq. 7).

    Terms with ``P(i) = 0`` contribute nothing; ``Q`` entries are floored
    at ``epsilon`` so the sum is always finite. Inputs need not be
    normalized — they are normalized here.
    """
    p_total = sum(p.values())
    q_total = sum(q.values())
    if p_total <= 0:
        raise ValueError("P must have positive total mass")
    if q_total <= 0:
        raise ValueError("Q must have positive total mass")
    divergence = 0.0
    for key, p_mass in p.items():
        if p_mass <= 0:
            continue
        p_norm = p_mass / p_total
        q_norm = max(q.get(key, 0.0) / q_total, epsilon)
        divergence += p_norm * math.log(p_norm / q_norm)
    return divergence


def range_query_kl(
    true_set: Set[str],
    result_probabilities: Mapping[str, float],
    universe: Iterable[str],
    epsilon: float = 0.01,
) -> Optional[float]:
    """KL divergence of one range query result against ground truth.

    For every object, the ground truth is the point distribution "in the
    window" while the probabilistic result is Bernoulli with the reported
    in-window probability ``q_i``; their KL divergence is ``ln(1/q_i)``.
    The query's divergence is the mean over the true result set::

        D = (1/|GT|) sum_{i in GT} ln( 1 / clip(q_i, epsilon, 1) )

    A perfect result scores 0; a totally missed object costs
    ``ln(1/epsilon)``; the symbolic model's diluted probabilities (the
    same mass spread over a whole reachable region) score between the
    two. This per-object construction is flat in the population size,
    matching the paper's Figure 12(a).

    Returns None when the true result set is empty (the paper averages
    over queries, which we interpret as queries with non-empty ground
    truth). ``universe`` is accepted for interface stability; the metric
    only reads the true objects' probabilities.
    """
    del universe
    if not true_set:
        return None
    total = 0.0
    for object_id in true_set:
        q = min(max(result_probabilities.get(object_id, 0.0), epsilon), 1.0)
        total += math.log(1.0 / q)
    return total / len(true_set)


def knn_hit_rate(returned: Iterable[str], true_knn: Sequence[str]) -> float:
    """``|returned ∩ trueKNN| / |trueKNN|``.

    The paper counts "the hit rates of the results returned by the two
    probabilistic methods over the ground truth result set".
    """
    true_set = set(true_knn)
    if not true_set:
        raise ValueError("true kNN set must not be empty")
    hits = len(true_set.intersection(set(returned)))
    return hits / len(true_set)


def top_k_success(
    distribution: Mapping[int, float],
    true_position: Point,
    anchor_index: AnchorIndex,
    k: int,
    tolerance: float = 2.0,
) -> bool:
    """Whether the true location matches the top-k predicted anchors.

    The k highest-probability anchors of the reconstructed distribution
    are compared against the true position; success means at least one of
    them lies within ``tolerance`` meters (ties at the k-th probability
    break by anchor id for determinism).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not distribution:
        return False
    ranked = sorted(distribution.items(), key=lambda item: (-item[1], item[0]))
    for ap_id, _ in ranked[:k]:
        anchor = anchor_index.anchor(ap_id)
        if anchor.point.distance_to(true_position) <= tolerance:
            return True
    return False


def mean_of(values: Iterable[Optional[float]]) -> Optional[float]:
    """Mean over the non-None entries (None when all are None/empty)."""
    cleaned = [v for v in values if v is not None]
    if not cleaned:
        return None
    return sum(cleaned) / len(cleaned)
