"""Raw reading generator (paper Section 5.1).

Wraps the RFID detection model: every simulated second, checks each
object against each reader's activation range and emits noisy raw
readings (detection time, tag id, reader id).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.geometry import Point
from repro.rfid.detection import DetectionModel, ReaderOutage
from repro.rfid.reader import RFIDReader
from repro.rfid.readings import RawReading
from repro.rng import RngLike, make_rng


class RawReadingGenerator:
    """Per-second raw reading stream for a fixed reader deployment.

    ``outages`` silence whole readers during given windows (failure
    injection for robustness experiments).
    """

    def __init__(
        self,
        readers: Sequence[RFIDReader],
        detection_probability: float,
        samples_per_second: int,
        rng: RngLike = None,
        outages: Sequence[ReaderOutage] = (),
    ):
        self.model = DetectionModel(
            readers,
            detection_probability=detection_probability,
            samples_per_second=samples_per_second,
            outages=outages,
        )
        self._rng = make_rng(rng)

    def generate(self, second: int, tag_positions: Mapping[str, Point]) -> List[RawReading]:
        """Raw readings for one second of true tag positions."""
        return self.model.sample_second(second, tag_positions, self._rng)
