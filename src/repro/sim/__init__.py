"""Simulation framework (paper Section 5.1, Figure 8).

Seven components, exactly as the paper's simulator diagram:

* true trace generator (:mod:`repro.sim.trace`),
* raw reading generator (:mod:`repro.sim.readings_sim`),
* particle filter module and symbolic model module (the two engines from
  :mod:`repro.queries.engine` and :mod:`repro.symbolic.engine`),
* ground truth query evaluation (:mod:`repro.sim.ground_truth`),
* top-k success and KL divergence / hit rate metrics
  (:mod:`repro.sim.metrics`),

wired together by :class:`repro.sim.simulator.Simulation`, with the
paper's parameter sweeps in :mod:`repro.sim.experiments`.
"""

from repro.sim.objects import MovingObject
from repro.sim.trace import TrueTraceGenerator
from repro.sim.readings_sim import RawReadingGenerator
from repro.sim.ground_truth import true_knn_result, true_range_result
from repro.sim.metrics import (
    kl_divergence,
    knn_hit_rate,
    range_query_kl,
    top_k_success,
)
from repro.sim.simulator import Simulation
from repro.sim.statistics import (
    TrackingStatistics,
    hallway_coverage_fraction,
    staleness_snapshot,
    tracking_statistics,
)
from repro.sim.scenarios import (
    ArrivalEvent,
    ArrivalTraceGenerator,
    rush_hour_arrivals,
)
from repro.sim.analysis import (
    ErrorSummary,
    LocalizationSample,
    by_staleness_bucket,
    compare_methods,
    localization_samples,
)
from repro.sim.experiments import (
    AccuracyReport,
    evaluate_accuracy,
    run_backend_comparison,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
)

__all__ = [
    "MovingObject",
    "TrueTraceGenerator",
    "RawReadingGenerator",
    "true_range_result",
    "true_knn_result",
    "kl_divergence",
    "range_query_kl",
    "knn_hit_rate",
    "top_k_success",
    "Simulation",
    "TrackingStatistics",
    "tracking_statistics",
    "staleness_snapshot",
    "hallway_coverage_fraction",
    "ArrivalEvent",
    "ArrivalTraceGenerator",
    "rush_hour_arrivals",
    "LocalizationSample",
    "ErrorSummary",
    "localization_samples",
    "by_staleness_bucket",
    "compare_methods",
    "AccuracyReport",
    "evaluate_accuracy",
    "run_backend_comparison",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
]
