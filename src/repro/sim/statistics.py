"""Run and deployment statistics.

Quantifies the tracking regime a simulation operates in — how much of
the hallways the readers cover, how stale object knowledge is, how often
objects transition between devices. These numbers explain the accuracy
results (low coverage => long silent stretches => harder inference) and
are reported alongside the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.collector.collector import EventDrivenCollector
from repro.floorplan.plan import FloorPlan
from repro.rfid.reader import RFIDReader


@dataclass(frozen=True)
class TrackingStatistics:
    """Snapshot statistics of a tracked population at one second."""

    second: int
    num_objects: int
    observed_objects: int
    currently_detected: int
    mean_staleness: Optional[float]
    median_staleness: Optional[float]
    max_staleness: Optional[int]

    @property
    def observed_fraction(self) -> float:
        """Fraction of objects seen at least once."""
        if self.num_objects == 0:
            return 0.0
        return self.observed_objects / self.num_objects

    @property
    def detected_fraction(self) -> float:
        """Fraction of observed objects currently inside some range."""
        if self.observed_objects == 0:
            return 0.0
        return self.currently_detected / self.observed_objects


def staleness_snapshot(
    collector: EventDrivenCollector, now: int
) -> List[int]:
    """Per-object seconds since the last detection, at ``now``."""
    values = []
    for object_id in collector.observed_objects():
        detection = collector.last_detection(object_id)
        if detection is not None:
            values.append(now - detection[1])
    return sorted(values)


def tracking_statistics(
    collector: EventDrivenCollector, now: int, num_objects: int
) -> TrackingStatistics:
    """Compute a :class:`TrackingStatistics` snapshot."""
    staleness = staleness_snapshot(collector, now)
    observed = len(staleness)
    if staleness:
        mean = sum(staleness) / observed
        median = staleness[observed // 2]
        largest = staleness[-1]
    else:
        mean = median = largest = None
    return TrackingStatistics(
        second=now,
        num_objects=num_objects,
        observed_objects=observed,
        currently_detected=sum(1 for s in staleness if s == 0),
        mean_staleness=mean,
        median_staleness=median,
        max_staleness=largest,
    )


def hallway_coverage_fraction(
    plan: FloorPlan, readers: Sequence[RFIDReader]
) -> float:
    """Fraction of hallway centerline length inside some activation range.

    The deployment regime in one number: ~1.0 means objects are almost
    always observed (the symbolic model gets sharp too); low values mean
    long silent stretches where the particle filter's dead reckoning is
    the only signal.
    """
    total = 0.0
    covered = 0.0
    for hallway in plan.hallways:
        total += hallway.length
        intervals = []
        for reader in readers:
            overlap = reader.detection_circle.segment_overlap(hallway.centerline)
            if overlap is not None and overlap[1] - overlap[0] > 1e-9:
                intervals.append(overlap)
        covered += _merged_length(intervals)
    if total == 0.0:
        return 0.0
    return covered / total


def _merged_length(intervals: List[tuple]) -> float:
    merged_total = 0.0
    end = None
    for lo, hi in sorted(intervals):
        if end is None or lo > end:
            merged_total += hi - lo
            end = hi
        elif hi > end:
            merged_total += hi - end
            end = hi
    return merged_total
