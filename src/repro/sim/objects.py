"""Moving object state for the true trace generator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.location import GraphLocation
from repro.graph.routing import Route


@dataclass
class MovingObject:
    """One simulated person: identity plus motion state.

    The motion state machine is: walking a route toward a destination
    room; on arrival, dwelling until ``dwell_until``; then picking a new
    destination. ``progress`` is arc length consumed along ``route``.
    """

    object_id: str
    tag_id: str
    location: GraphLocation
    route: Optional[Route] = None
    progress: float = 0.0
    speed: float = 1.0
    dwell_until: int = 0
    destination_room: Optional[str] = None

    @property
    def is_walking(self) -> bool:
        """True while following a route."""
        return self.route is not None

    @property
    def is_dwelling(self) -> bool:
        """True while paused inside a room."""
        return self.route is None
