"""True trace generator (paper Section 5.1).

"We let each object randomly select a room as its destination, and walk
along the shortest path on the indoor walking graph from its current
location to the destination node. We simulate the objects' speeds using a
Gaussian distribution with mu = 1 m/s and sigma = 0.1."

On arrival, objects dwell in the destination room for a uniform random
time before picking a new destination — without dwell every object would
be in a hallway almost always, which neither matches offices nor exercises
the room-probability parts of the query algorithms.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import SimulationConfig
from repro.geometry import Point
from repro.graph.location import GraphLocation
from repro.graph.routing import plan_route
from repro.graph.walking_graph import WalkingGraph
from repro.rng import RngLike, make_rng
from repro.sim.objects import MovingObject


class TrueTraceGenerator:
    """Drives all moving objects, one second at a time."""

    def __init__(
        self,
        graph: WalkingGraph,
        config: SimulationConfig,
        rng: RngLike = None,
        num_objects: int = None,
    ):
        self.graph = graph
        self.config = config
        self._rng = make_rng(rng)
        self._now = 0
        count = num_objects if num_objects is not None else config.num_objects
        self.objects: List[MovingObject] = [
            self._spawn(index) for index in range(1, count + 1)
        ]

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """The current simulated second."""
        return self._now

    def step(self) -> None:
        """Advance every object by one second."""
        self._now += 1
        for obj in self.objects:
            self._step_object(obj)

    def locations(self) -> Dict[str, GraphLocation]:
        """Current true graph locations, by object id."""
        return {obj.object_id: obj.location for obj in self.objects}

    def positions(self) -> Dict[str, Point]:
        """Current true 2-D positions, by object id."""
        return {
            obj.object_id: self.graph.point_of(obj.location)
            for obj in self.objects
        }

    def tag_positions(self) -> Dict[str, Point]:
        """Current true 2-D positions, by tag id (for the reading generator)."""
        return {
            obj.tag_id: self.graph.point_of(obj.location)
            for obj in self.objects
        }

    def tag_to_object(self) -> Dict[str, str]:
        """The tag -> object id mapping."""
        return {obj.tag_id: obj.object_id for obj in self.objects}

    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> MovingObject:
        """Create one object at a random location, already heading somewhere."""
        edge = self._random_edge()
        offset = self._rng.uniform(0.0, edge.length)
        obj = MovingObject(
            object_id=f"o{index}",
            tag_id=f"tag{index}",
            location=GraphLocation(edge.edge_id, offset),
        )
        self._assign_destination(obj)
        return obj

    def _random_edge(self):
        """An edge sampled proportionally to its length."""
        edges = self.graph.edges
        lengths = [e.length for e in edges]
        total = sum(lengths)
        draw = self._rng.uniform(0.0, total)
        consumed = 0.0
        for edge, length in zip(edges, lengths):
            consumed += length
            if draw <= consumed:
                return edge
        return edges[-1]

    def _assign_destination(self, obj: MovingObject) -> None:
        """Pick a random destination room and plan the shortest route."""
        rooms = self.graph.room_ids()
        choices = [r for r in rooms if r != obj.destination_room] or rooms
        room_id = choices[self._rng.integers(0, len(choices))]
        obj.destination_room = room_id
        obj.route = plan_route(
            self.graph, obj.location, self.graph.room_node(room_id)
        )
        obj.progress = 0.0
        obj.speed = float(
            max(
                self._rng.normal(self.config.speed_mean, self.config.speed_std),
                0.1,
            )
        )

    def _step_object(self, obj: MovingObject) -> None:
        if obj.is_dwelling:
            if self._now >= obj.dwell_until:
                self._assign_destination(obj)
            return
        obj.progress += obj.speed
        route = obj.route
        if obj.progress >= route.total_length:
            obj.location = route.end
            obj.route = None
            dwell = self._rng.uniform(
                self.config.min_dwell_seconds, self.config.max_dwell_seconds
            )
            obj.dwell_until = self._now + int(round(dwell))
        else:
            obj.location = route.location_at(obj.progress)
