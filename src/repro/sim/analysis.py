"""Localization error analysis.

Beyond the paper's three query-level metrics, this module quantifies the
*location inference* quality directly: per-object error between the
inferred anchor distribution and the true position, sliced by staleness
(seconds since last detection). These curves explain *why* the query
metrics behave as they do — error grows with silence, and the particle
filter degrades far more gracefully than the symbolic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.graph.anchors import AnchorIndex
from repro.index.hashtable import AnchorObjectTable


@dataclass(frozen=True)
class LocalizationSample:
    """One object's localization quality at one timestamp."""

    object_id: str
    second: int
    staleness: int
    mode_error: float
    expected_error: float
    mass_within_3m: float


@dataclass
class ErrorSummary:
    """Aggregate over a set of localization samples."""

    count: int
    mean_mode_error: float
    mean_expected_error: float
    mean_mass_within_3m: float

    @classmethod
    def of(cls, samples: Sequence[LocalizationSample]) -> Optional["ErrorSummary"]:
        """Summarize, or None for an empty set."""
        if not samples:
            return None
        n = len(samples)
        return cls(
            count=n,
            mean_mode_error=sum(s.mode_error for s in samples) / n,
            mean_expected_error=sum(s.expected_error for s in samples) / n,
            mean_mass_within_3m=sum(s.mass_within_3m for s in samples) / n,
        )


def localization_samples(
    table: AnchorObjectTable,
    anchor_index: AnchorIndex,
    true_positions: Mapping[str, Point],
    staleness: Mapping[str, int],
    second: int,
) -> List[LocalizationSample]:
    """Per-object localization quality from an ``APtoObjHT`` table.

    * ``mode_error`` — Euclidean distance from the most probable anchor
      to the true position;
    * ``expected_error`` — probability-weighted mean anchor distance;
    * ``mass_within_3m`` — total probability within 3 m of the truth.
    """
    samples: List[LocalizationSample] = []
    for object_id in table.objects():
        truth = true_positions.get(object_id)
        if truth is None:
            continue
        distribution = table.distribution_of(object_id)
        if not distribution:
            continue
        mode_ap = max(distribution.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        mode_error = anchor_index.anchor(mode_ap).point.distance_to(truth)
        expected = 0.0
        near_mass = 0.0
        for ap_id, mass in distribution.items():
            distance = anchor_index.anchor(ap_id).point.distance_to(truth)
            expected += mass * distance
            if distance <= 3.0:
                near_mass += mass
        samples.append(
            LocalizationSample(
                object_id=object_id,
                second=second,
                staleness=staleness.get(object_id, 0),
                mode_error=mode_error,
                expected_error=expected,
                mass_within_3m=near_mass,
            )
        )
    return samples


def by_staleness_bucket(
    samples: Sequence[LocalizationSample],
    buckets: Sequence[Tuple[int, int]] = ((0, 0), (1, 5), (6, 15), (16, 60)),
) -> Dict[str, Optional[ErrorSummary]]:
    """Group samples into staleness ranges and summarize each.

    Returns ``{"0-0s": summary, "1-5s": ..., ...}`` (None for empty
    buckets).
    """
    result: Dict[str, Optional[ErrorSummary]] = {}
    for lo, hi in buckets:
        members = [s for s in samples if lo <= s.staleness <= hi]
        result[f"{lo}-{hi}s"] = ErrorSummary.of(members)
    return result


def compare_methods(
    pf_samples: Sequence[LocalizationSample],
    sm_samples: Sequence[LocalizationSample],
) -> Dict[str, Dict[str, float]]:
    """Side-by-side summary rows for the two inference methods."""
    rows: Dict[str, Dict[str, float]] = {}
    for name, samples in (("particle_filter", pf_samples), ("symbolic", sm_samples)):
        summary = ErrorSummary.of(samples)
        if summary is None:
            continue
        rows[name] = {
            "count": summary.count,
            "mean_mode_error": round(summary.mean_mode_error, 3),
            "mean_expected_error": round(summary.mean_expected_error, 3),
            "mean_mass_within_3m": round(summary.mean_mass_within_3m, 3),
        }
    return rows
