"""Rolling gateway checkpoints: per-partition files + one manifest.

Layout of a checkpoint directory::

    partition-0000.json   one per partition: that worker's per-tenant
    partition-0001.json   TrackingService.state_dict slices
    ...
    gateway.manifest.json the commit point: ring geometry, tenant
                          specs, and the gateway-side serving state
                          (sessions, analytics, tick counters)

Every file is written atomically (tmp + ``os.replace``) and the
manifest is written *last*, so a crash mid-checkpoint leaves the
previous complete checkpoint intact: a directory is only as current as
its manifest.

Restore is **coordinated**: all partition files must exist, agree on
the partition count, and carry every tenant at the same tick — a
checkpoint is one consistent cut or it is refused
(:class:`GatewayCompatibilityError`).

Restoring at a *different* partition count works by construction:
per-tenant worker state is mergeable by object id (collector runs,
generations, events, cache entries are all per-object and disjoint
across partitions), so restore merges the old slices into one logical
state per tenant and re-splits it along the new ring
(:func:`merge_tenant_states` / :func:`split_tenant_state`). Because
filter randomness derives from ``(seed, second, object_id)``, the
re-placed objects resume bit-identically.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.gateway.coordinator import GatewayCoordinator
from repro.gateway.partitioning import DEFAULT_VNODES
from repro.gateway.tenants import TenantSpec
from repro.gateway.transport import DEFAULT_QUEUE_DEPTH

GATEWAY_CHECKPOINT_FORMAT = "repro-gateway-checkpoint"
GATEWAY_CHECKPOINT_VERSION = 1
PARTITION_CHECKPOINT_FORMAT = "repro-gateway-partition"

MANIFEST_NAME = "gateway.manifest.json"


class GatewayCompatibilityError(ValueError):
    """A gateway checkpoint cannot be restored as asked."""


def partition_filename(index: int) -> str:
    return f"partition-{index:04d}.json"


def _write_json_atomic(path: str, document: dict) -> None:
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    os.replace(tmp_path, path)


def save_checkpoint(coordinator: GatewayCoordinator, directory: str) -> None:
    """Write one coordinated checkpoint of the whole deployment."""
    os.makedirs(directory, exist_ok=True)
    states = coordinator.partition_states()
    for index in sorted(states):
        document = {
            "format": PARTITION_CHECKPOINT_FORMAT,
            "checkpoint_version": GATEWAY_CHECKPOINT_VERSION,
            "partition": index,
            "partitions": coordinator.num_partitions,
            "tenants": states[index],
        }
        _write_json_atomic(
            os.path.join(directory, partition_filename(index)), document
        )
    manifest = {
        "format": GATEWAY_CHECKPOINT_FORMAT,
        "checkpoint_version": GATEWAY_CHECKPOINT_VERSION,
        "state": coordinator.state_dict(),
    }
    _write_json_atomic(os.path.join(directory, MANIFEST_NAME), manifest)


def load_checkpoint(directory: str) -> Tuple[dict, Dict[int, Dict[str, dict]]]:
    """Read a checkpoint directory → (manifest state, partition slices).

    Validates the coordinated cut: manifest present, every partition
    file present with matching geometry, every tenant present in every
    partition file at one common tick.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise GatewayCompatibilityError(
            f"{directory}: no {MANIFEST_NAME}; not a gateway checkpoint "
            "(or an interrupted one — the manifest is written last)"
        )
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != GATEWAY_CHECKPOINT_FORMAT:
        raise GatewayCompatibilityError(
            f"{manifest_path}: format {manifest.get('format')!r} is not "
            f"{GATEWAY_CHECKPOINT_FORMAT!r}"
        )
    if int(manifest.get("checkpoint_version", 0)) != GATEWAY_CHECKPOINT_VERSION:
        raise GatewayCompatibilityError(
            f"{manifest_path}: checkpoint version "
            f"{manifest.get('checkpoint_version')!r} is not supported "
            f"(this build speaks {GATEWAY_CHECKPOINT_VERSION})"
        )
    state = manifest["state"]
    partitions = int(state["partitions"])
    tenant_ids = sorted(
        record["tenant_id"] for record in state["tenants"]
    )
    slices: Dict[int, Dict[str, dict]] = {}
    for index in range(partitions):
        path = os.path.join(directory, partition_filename(index))
        if not os.path.exists(path):
            raise GatewayCompatibilityError(
                f"{directory}: missing {partition_filename(index)} "
                f"(manifest says {partitions} partitions); the checkpoint "
                "is incomplete — re-create it"
            )
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("format") != PARTITION_CHECKPOINT_FORMAT:
            raise GatewayCompatibilityError(
                f"{path}: format {document.get('format')!r} is not "
                f"{PARTITION_CHECKPOINT_FORMAT!r}"
            )
        if (
            int(document.get("partition", -1)) != index
            or int(document.get("partitions", -1)) != partitions
        ):
            raise GatewayCompatibilityError(
                f"{path}: geometry mismatch with the manifest "
                "(stale file from an older layout?); re-create the checkpoint"
            )
        if sorted(document["tenants"]) != tenant_ids:
            raise GatewayCompatibilityError(
                f"{path}: tenant set {sorted(document['tenants'])} does not "
                f"match the manifest's {tenant_ids}; re-create the checkpoint"
            )
        slices[index] = document["tenants"]
    # One consistent cut: every partition stopped after the same tick.
    for tenant_id in tenant_ids:
        ticks = {int(slices[i][tenant_id]["ticks"]) for i in slices}
        if len(ticks) > 1:
            raise GatewayCompatibilityError(
                f"{directory}: tenant {tenant_id!r} is at ticks "
                f"{sorted(ticks)} across partitions — not a coordinated "
                "cut; re-create the checkpoint"
            )
    return state, slices


# ----------------------------------------------------------------------
# merge / split: re-partitioning a tenant's service state
# ----------------------------------------------------------------------
_MERGE_INVARIANT_KEYS = (
    "version",
    "seed",
    "ticks",
    "last_second",
    "use_pruning",
    "identity_tags",
    "config",
    "filter",
)


def merge_tenant_states(states: Sequence[dict]) -> dict:
    """Merge one tenant's per-partition service states into one.

    All per-object parts (collector runs/generations/tags/events, cache
    entries) are disjoint across partitions, so the merge is a keyed
    union; scalar parts must agree or the cut was not coordinated.
    Mappings are rebuilt in sorted-key order and events sorted by
    ``(second, object_id)``, so the merged state is canonical —
    independent of how many partitions produced it.
    """
    if not states:
        raise ValueError("need at least one partition state")
    base = copy.deepcopy(states[0])
    for other in states[1:]:
        for key in _MERGE_INVARIANT_KEYS:
            if base.get(key) != other.get(key):
                raise GatewayCompatibilityError(
                    f"partition states disagree on {key!r} "
                    f"({base.get(key)!r} vs {other.get(key)!r}); "
                    "not a coordinated checkpoint"
                )
        collector = base["collector"]
        other_collector = other["collector"]
        if (
            collector["last_ingested_second"]
            != other_collector["last_ingested_second"]
        ):
            raise GatewayCompatibilityError(
                "partition states disagree on the last ingested second; "
                "not a coordinated checkpoint"
            )
        collector["runs"].update(other_collector["runs"])
        collector["generations"].update(other_collector["generations"])
        collector["tag_to_object"].update(other_collector["tag_to_object"])
        collector["events"].extend(other_collector["events"])
        if base.get("cache") is not None and other.get("cache") is not None:
            base["cache"]["entries"].update(other["cache"]["entries"])
    collector = base["collector"]
    collector["runs"] = {key: collector["runs"][key] for key in sorted(collector["runs"])}
    collector["generations"] = {
        key: collector["generations"][key] for key in sorted(collector["generations"])
    }
    collector["tag_to_object"] = {
        key: collector["tag_to_object"][key]
        for key in sorted(collector["tag_to_object"])
    }
    collector["events"] = sorted(
        collector["events"], key=lambda e: (e["second"], e["object_id"], e["kind"])
    )
    if base.get("cache") is not None:
        base["cache"]["entries"] = {
            key: base["cache"]["entries"][key]
            for key in sorted(base["cache"]["entries"])
        }
    return base


def split_tenant_state(merged: dict, keep: Callable[[str], bool]) -> dict:
    """One partition's slice of a merged state (objects where ``keep``)."""
    out = copy.deepcopy(merged)
    collector = out["collector"]
    collector["runs"] = {
        object_id: runs
        for object_id, runs in collector["runs"].items()
        if keep(object_id)
    }
    collector["generations"] = {
        object_id: generation
        for object_id, generation in collector["generations"].items()
        if keep(object_id)
    }
    collector["tag_to_object"] = {
        tag: object_id
        for tag, object_id in collector["tag_to_object"].items()
        if keep(object_id)
    }
    collector["events"] = [
        event for event in collector["events"] if keep(event["object_id"])
    ]
    if out.get("cache") is not None:
        out["cache"]["entries"] = {
            object_id: entry
            for object_id, entry in out["cache"]["entries"].items()
            if keep(object_id)
        }
    # Sessions and analytics live at the gateway, not in workers.
    out["analytics"] = None
    return out


def restore_coordinator(
    directory: str,
    tenants: Optional[Sequence[TenantSpec]] = None,
    num_partitions: Optional[int] = None,
    transport: str = "process",
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    shed_policy: str = "block",
    vnodes: Optional[int] = None,
    report_threshold: float = 0.05,
    min_change: float = 0.10,
    observability: Optional[bool] = None,
    telemetry_interval: int = 8,
) -> GatewayCoordinator:
    """Build a coordinator resuming exactly where a checkpoint stopped.

    ``num_partitions`` may differ from the checkpoint's: the old slices
    are merged per tenant and re-split along the new ring. Passing
    ``tenants`` pins the expected tenant set; any mismatch with the
    checkpoint is refused with an actionable error instead of silently
    dropping or fabricating tenants.
    """
    manifest_state, slices = load_checkpoint(directory)
    manifest_specs = [
        TenantSpec.from_dict(record) for record in manifest_state["tenants"]
    ]
    if tenants is not None:
        want = {spec.tenant_id: spec for spec in tenants}
        have = {spec.tenant_id: spec for spec in manifest_specs}
        if set(want) != set(have):
            missing = sorted(set(have) - set(want))
            extra = sorted(set(want) - set(have))
            raise GatewayCompatibilityError(
                f"tenant set mismatch: the checkpoint in {directory!r} holds "
                f"{sorted(have)} but the restore asked for {sorted(want)} "
                f"(missing from request: {missing}; not in checkpoint: "
                f"{extra}). Restore with the checkpoint's tenant set, or "
                "re-create the checkpoint with the new tenants."
            )
        for tenant_id, spec in want.items():
            if spec.to_dict() != have[tenant_id].to_dict():
                raise GatewayCompatibilityError(
                    f"tenant {tenant_id!r} differs from the checkpointed "
                    f"spec ({spec.to_dict()} vs {have[tenant_id].to_dict()}); "
                    "a changed seed/plan/backend cannot resume — re-create "
                    "the checkpoint"
                )
    specs = manifest_specs
    new_partitions = (
        int(num_partitions)
        if num_partitions is not None
        else int(manifest_state["partitions"])
    )
    new_vnodes = (
        int(vnodes)
        if vnodes is not None
        else int(manifest_state.get("vnodes", DEFAULT_VNODES))
    )
    merged = {
        spec.tenant_id: merge_tenant_states(
            [slices[index][spec.tenant_id] for index in sorted(slices)]
        )
        for spec in specs
    }
    coordinator = GatewayCoordinator(
        specs,
        num_partitions=new_partitions,
        transport=transport,
        queue_depth=queue_depth,
        shed_policy=shed_policy,
        vnodes=new_vnodes,
        report_threshold=report_threshold,
        min_change=min_change,
        observability=observability,
        telemetry_interval=telemetry_interval,
    )
    try:
        ring = coordinator.ring
        payloads: Dict[int, Dict[str, dict]] = {}
        for handle in coordinator.handles:
            index = handle.index  # type: ignore[attr-defined]
            payloads[index] = {
                tenant_id: split_tenant_state(
                    state,
                    lambda object_id, _tid=tenant_id: (
                        ring.partition_of(_tid, object_id) == index
                    ),
                )
                for tenant_id, state in merged.items()
            }
        coordinator.restore_partitions(payloads)
        coordinator.restore_serving(manifest_state["serving"])
    except Exception:
        coordinator.close()
        raise
    return coordinator
