"""The partition worker: one tracking slice per tenant, message-driven.

A worker owns *its ring slice* of every tenant's objects and runs one
:class:`~repro.service.tracking.TrackingService` per tenant over that
slice (serial mode, single shard — cross-process parallelism replaces
in-process sharding here). The gateway talks to workers through a tiny
op-code protocol of picklable dicts:

=========  ===========================================================
op         meaning
=========  ===========================================================
tick       ingest one tenant-second of readings, filter, reply with
           the slice's snapshot (``op: snapshot``)
state      reply with every tenant service's full ``state_dict``
restore    restore every tenant service from checkpoint slices
ping       liveness probe; replies per-tenant tick counters
stop       clean shutdown (reply ``op: bye``, then exit)
=========  ===========================================================

Determinism: filter randomness is derived from
``(seed, second, object_id)``, and a worker ticks *every* second of its
tenants (even with an empty slice of readings — previously seen objects
must keep filtering), so worker output is bit-identical to the same
objects tracked in a single process. The gateway's fan-in relies on
exactly this.

:class:`PartitionWorkerCore` is transport-agnostic (a plain
message-in/reply-out object), which lets the inline transport and the
tests drive it without any process machinery; :func:`worker_main` is
the forked child's receive loop around it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.rfid.readings import RawReading
from repro.service.ingest import ReadingBatch
from repro.service.tracking import TrackingService

from repro.gateway.tenants import TenantSpec, TenantWorld


def encode_readings(readings: Sequence[RawReading]) -> List[dict]:
    """Readings as picklable primitive dicts (the wire shape)."""
    return [
        {"time": reading.time, "tag_id": reading.tag_id, "reader_id": reading.reader_id}
        for reading in readings
    ]


def decode_readings(records: Sequence[Mapping[str, object]]) -> Tuple[RawReading, ...]:
    """Inverse of :func:`encode_readings`."""
    return tuple(
        RawReading(
            time=float(record["time"]),  # type: ignore[arg-type]
            tag_id=str(record["tag_id"]),
            reader_id=str(record["reader_id"]),
        )
        for record in records
    )


class WorkerProtocolError(RuntimeError):
    """A message the worker cannot interpret."""


class PartitionWorkerCore:
    """One partition's tenant services plus the op-code dispatch."""

    def __init__(self, index: int, specs: Sequence[TenantSpec]) -> None:
        self.index = index
        self.services: Dict[str, TrackingService] = {}
        for spec in specs:
            world = TenantWorld(spec)
            self.services[spec.tenant_id] = TrackingService(
                world.config,
                plan=world.plan,
                readers=world.readers,
                num_shards=1,
                mode="serial",
                use_cache=True,
                seed=spec.seed,
                filter_backend=spec.filter_backend,
            )

    # ------------------------------------------------------------------
    def handle(self, message: Mapping[str, object]) -> dict:
        """Dispatch one protocol message; always returns a reply dict."""
        op = message.get("op")
        if op == "tick":
            return self._tick(message)
        if op == "state":
            return {
                "op": "state",
                "partition": self.index,
                "tenants": {
                    tenant_id: service.state_dict()
                    for tenant_id, service in self.services.items()
                },
            }
        if op == "restore":
            states = message["tenants"]
            assert isinstance(states, dict)
            for tenant_id, state in states.items():
                self._service(tenant_id).restore_state(state)
            return {"op": "ok", "partition": self.index}
        if op == "ping":
            return {
                "op": "pong",
                "partition": self.index,
                "tenants": {
                    tenant_id: {
                        "ticks": service.ticks,
                        "last_second": service.last_second,
                    }
                    for tenant_id, service in self.services.items()
                },
            }
        if op == "stop":
            return {"op": "bye", "partition": self.index}
        raise WorkerProtocolError(f"unknown op {op!r}")

    def _service(self, tenant_id: object) -> TrackingService:
        service = self.services.get(str(tenant_id))
        if service is None:
            raise WorkerProtocolError(
                f"partition {self.index} hosts no tenant {tenant_id!r}"
            )
        return service

    def _tick(self, message: Mapping[str, object]) -> dict:
        tenant_id = str(message["tenant"])
        second = int(message["second"])  # type: ignore[arg-type]
        service = self._service(tenant_id)
        readings = decode_readings(message["readings"])  # type: ignore[arg-type]
        service.process_batch(ReadingBatch(second=second, readings=readings))
        snapshot = service.snapshot()
        table = snapshot.table
        return {
            "op": "snapshot",
            "partition": self.index,
            "tenant": tenant_id,
            "second": second,
            "entries": {
                object_id: dict(table.distribution_of(object_id))
                for object_id in sorted(table.objects())
            },
            "candidates": sorted(snapshot.candidates),
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        for service in self.services.values():
            service.close()


def worker_main(conn: object, index: int, spec_records: Sequence[dict]) -> None:
    """Forked child entry point: serve protocol messages until EOF/stop.

    Protocol errors are reported as ``op: error`` replies rather than
    killing the worker — one bad message must not take a partition (and
    its tenants' filter state) down with it.
    """
    specs = [TenantSpec.from_dict(record) for record in spec_records]
    core = PartitionWorkerCore(index, specs)
    try:
        while True:
            try:
                message = conn.recv()  # type: ignore[attr-defined]
            except (EOFError, OSError):
                break
            try:
                reply = core.handle(message)
            except Exception as exc:  # noqa: BLE001 - reported to the gateway
                reply = {
                    "op": "error",
                    "partition": index,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            try:
                conn.send(reply)  # type: ignore[attr-defined]
            except (BrokenPipeError, OSError):
                break
            if reply.get("op") == "bye":
                break
    finally:
        core.close()
        try:
            conn.close()  # type: ignore[attr-defined]
        except OSError:  # pragma: no cover - already gone
            pass
