"""The partition worker: one tracking slice per tenant, message-driven.

A worker owns *its ring slice* of every tenant's objects and runs one
:class:`~repro.service.tracking.TrackingService` per tenant over that
slice (serial mode, single shard — cross-process parallelism replaces
in-process sharding here). The gateway talks to workers through a tiny
op-code protocol of picklable dicts:

=========  ===========================================================
op         meaning
=========  ===========================================================
tick       ingest one tenant-second of readings, filter, reply with
           the slice's snapshot (``op: snapshot``)
state      reply with every tenant service's full ``state_dict``
restore    restore every tenant service from checkpoint slices
ping       liveness probe; replies per-tenant tick counters
telemetry  reply with this worker's metric registry snapshot plus the
           spans recorded since the previous telemetry fetch
stop       clean shutdown (reply ``op: bye``, then exit)
=========  ===========================================================

Telemetry rides the same FIFO pipe as ticks: metrics are cumulative
(each fetch re-serializes the registry), spans are drained
incrementally (each fetch ships only spans recorded since the last
one). A ``tick`` message may carry a ``trace`` context string stamped
by the coordinator; when observability is on the worker wraps its
tick in a ``gateway.worker_tick`` span tagged with that context, which
is how a merged Chrome trace stitches one tick across processes.

Determinism: filter randomness is derived from
``(seed, second, object_id)``, and a worker ticks *every* second of its
tenants (even with an empty slice of readings — previously seen objects
must keep filtering), so worker output is bit-identical to the same
objects tracked in a single process. The gateway's fan-in relies on
exactly this.

:class:`PartitionWorkerCore` is transport-agnostic (a plain
message-in/reply-out object), which lets the inline transport and the
tests drive it without any process machinery; :func:`worker_main` is
the forked child's receive loop around it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import repro.obs as obs
from repro.rfid.readings import RawReading
from repro.service.ingest import ReadingBatch
from repro.service.tracking import TrackingService

from repro.gateway.tenants import TenantSpec, TenantWorld

#: Shape of an empty registry snapshot (telemetry reply when obs is off).
EMPTY_METRICS: Dict[str, List[dict]] = {
    "counters": [],
    "gauges": [],
    "histograms": [],
}


def encode_readings(readings: Sequence[RawReading]) -> List[dict]:
    """Readings as picklable primitive dicts (the wire shape)."""
    return [
        {"time": reading.time, "tag_id": reading.tag_id, "reader_id": reading.reader_id}
        for reading in readings
    ]


def decode_readings(records: Sequence[Mapping[str, object]]) -> Tuple[RawReading, ...]:
    """Inverse of :func:`encode_readings`."""
    return tuple(
        RawReading(
            time=float(record["time"]),  # type: ignore[arg-type]
            tag_id=str(record["tag_id"]),
            reader_id=str(record["reader_id"]),
        )
        for record in records
    )


class WorkerProtocolError(RuntimeError):
    """A message the worker cannot interpret."""


class PartitionWorkerCore:
    """One partition's tenant services plus the op-code dispatch."""

    def __init__(
        self,
        index: int,
        specs: Sequence[TenantSpec],
        observability: bool = False,
        private_registry: bool = False,
    ) -> None:
        self.index = index
        self.observability = bool(observability)
        #: True only in a forked child, where this core is the sole
        #: writer of the process registry — per-tick accuracy deltas
        #: (and the telemetry op's cumulative snapshot) are attributable
        #: to this partition alone. Inline cores share the gateway's
        #: registry, so attribution happens coordinator-side instead.
        self.private_registry = bool(private_registry)
        self._spans_sent = 0
        self._ess_count = 0
        self._ess_total = 0.0
        self._ess_collapses = 0
        self.services: Dict[str, TrackingService] = {}
        for spec in specs:
            world = TenantWorld(spec, observability=observability)
            self.services[spec.tenant_id] = TrackingService(
                world.config,
                plan=world.plan,
                readers=world.readers,
                num_shards=1,
                mode="serial",
                use_cache=True,
                seed=spec.seed,
                filter_backend=spec.filter_backend,
            )

    # ------------------------------------------------------------------
    def handle(self, message: Mapping[str, object]) -> dict:
        """Dispatch one protocol message; always returns a reply dict."""
        op = message.get("op")
        if op == "tick":
            return self._tick(message)
        if op == "state":
            return {
                "op": "state",
                "partition": self.index,
                "tenants": {
                    tenant_id: service.state_dict()
                    for tenant_id, service in self.services.items()
                },
            }
        if op == "restore":
            states = message["tenants"]
            assert isinstance(states, dict)
            for tenant_id, state in states.items():
                self._service(tenant_id).restore_state(state)
            return {"op": "ok", "partition": self.index}
        if op == "ping":
            return {
                "op": "pong",
                "partition": self.index,
                "tenants": {
                    tenant_id: {
                        "ticks": service.ticks,
                        "last_second": service.last_second,
                    }
                    for tenant_id, service in self.services.items()
                },
            }
        if op == "telemetry":
            return self._telemetry()
        if op == "stop":
            return {"op": "bye", "partition": self.index}
        raise WorkerProtocolError(f"unknown op {op!r}")

    def _telemetry(self) -> dict:
        """Cumulative metrics plus the spans since the last fetch."""
        reply: dict = {
            "op": "telemetry",
            "partition": self.index,
            "enabled": obs.enabled(),
        }
        if not obs.enabled():
            reply["metrics"] = {key: [] for key in EMPTY_METRICS}
            reply["spans"] = []
            return reply
        reply["metrics"] = obs.registry().snapshot()
        spans = obs.tracer().snapshot()["spans"]
        assert isinstance(spans, list)
        reply["spans"] = spans[self._spans_sent:]
        self._spans_sent = len(spans)
        return reply

    def _service(self, tenant_id: object) -> TrackingService:
        service = self.services.get(str(tenant_id))
        if service is None:
            raise WorkerProtocolError(
                f"partition {self.index} hosts no tenant {tenant_id!r}"
            )
        return service

    def _tick(self, message: Mapping[str, object]) -> dict:
        tenant_id = str(message["tenant"])
        second = int(message["second"])  # type: ignore[arg-type]
        service = self._service(tenant_id)
        readings = decode_readings(message["readings"])  # type: ignore[arg-type]
        batch = ReadingBatch(second=second, readings=readings)
        trace = message.get("trace")
        if obs.enabled():
            attrs: Dict[str, object] = {
                "tenant": tenant_id,
                "second": second,
                "partition": self.index,
            }
            if trace is not None:
                attrs["trace"] = str(trace)
            with obs.span("gateway.worker_tick", **attrs):
                service.process_batch(batch)
        else:
            service.process_batch(batch)
        snapshot = service.snapshot()
        table = snapshot.table
        reply: dict = {
            "op": "snapshot",
            "partition": self.index,
            "tenant": tenant_id,
            "second": second,
            "entries": {
                object_id: dict(table.distribution_of(object_id))
                for object_id in sorted(table.objects())
            },
            "candidates": sorted(snapshot.candidates),
        }
        if self.private_registry and obs.enabled():
            reply["obs"] = self._tick_obs()
        return reply

    def _tick_obs(self) -> dict:
        """Accuracy-proxy deltas attributable to the tick just run.

        Only meaningful with a private registry (forked child): the
        diff of cumulative ESS statistics between two consecutive ticks
        is then exactly the just-processed tick's contribution. The
        values are derived from deterministic filter state, so the
        reply stays bit-identical across same-seed runs.
        """
        registry = obs.registry()
        count = 0
        total = 0.0
        for series in registry.series_of("filter.ess"):
            if series.get("type") == "histogram":
                count += int(series.get("count", 0))  # type: ignore[arg-type]
                total += float(series.get("total", 0.0))  # type: ignore[arg-type]
        collapses = registry.counter_total("filter.ess_collapses")
        delta_count = count - self._ess_count
        delta_total = total - self._ess_total
        delta_collapses = collapses - self._ess_collapses
        self._ess_count = count
        self._ess_total = total
        self._ess_collapses = collapses
        mean: Optional[float] = (
            delta_total / delta_count if delta_count > 0 else None
        )
        return {"ess_mean": mean, "ess_collapses": delta_collapses}

    # ------------------------------------------------------------------
    def close(self) -> None:
        for service in self.services.values():
            service.close()


def worker_main(
    conn: object,
    index: int,
    spec_records: Sequence[dict],
    observability: bool = False,
) -> None:
    """Forked child entry point: serve protocol messages until EOF/stop.

    Protocol errors are reported as ``op: error`` replies rather than
    killing the worker — one bad message must not take a partition (and
    its tenants' filter state) down with it.

    The fork inherits the parent's obs switch and registry contents;
    both are reset here so the child's registry holds only this
    partition's series (that is what makes the ``partition`` label of
    the federated fleet snapshot truthful).
    """
    if observability:
        obs.enable(fresh=True)
    else:
        obs.disable()
    specs = [TenantSpec.from_dict(record) for record in spec_records]
    core = PartitionWorkerCore(
        index, specs, observability=observability, private_registry=True
    )
    try:
        while True:
            try:
                message = conn.recv()  # type: ignore[attr-defined]
            except (EOFError, OSError):
                break
            try:
                reply = core.handle(message)
            except Exception as exc:  # noqa: BLE001 - reported to the gateway
                reply = {
                    "op": "error",
                    "partition": index,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            try:
                conn.send(reply)  # type: ignore[attr-defined]
            except (BrokenPipeError, OSError):
                break
            if reply.get("op") == "bye":
                break
    finally:
        core.close()
        try:
            conn.close()  # type: ignore[attr-defined]
        except OSError:  # pragma: no cover - already gone
            pass
