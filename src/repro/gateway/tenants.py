"""Tenant registry: many floorplans served by one gateway deployment.

A *tenant* is one building/floorplan with its own RNG seed, object
population, and (optionally) filter backend — the worldwide
floor-plan-service framing: one deployment, many isolated worlds. A
:class:`TenantSpec` is the portable description (JSON-safe, identical
on the gateway and inside every worker process); a
:class:`TenantWorld` is the deterministic expansion of a spec into the
plan/readers/config objects the tracking stack needs.

Expansion is pure: both sides build the same world from the same spec,
so nothing geometric ever crosses the process boundary — only specs and
readings do.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.floorplan.plan import FloorPlan
from repro.floorplan.presets import (
    cross_office_plan,
    linear_office_plan,
    paper_office_plan,
    small_test_plan,
)
from repro.rfid.deployment import deploy_readers_uniform
from repro.rfid.reader import RFIDReader

#: Named floorplan presets a spec may reference (a name travels over
#: the wire; a FloorPlan object never does).
PLAN_PRESETS: Dict[str, Callable[[], FloorPlan]] = {
    "paper": paper_office_plan,
    "small": small_test_plan,
    "linear": linear_office_plan,
    "cross": cross_office_plan,
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's portable, JSON-safe description."""

    tenant_id: str
    seed: int
    num_objects: int = 8
    plan: str = "paper"
    filter_backend: str = "particle"

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if "/" in self.tenant_id:
            # Ring keys are "tenant/object"; a slash in the tenant id
            # would alias another tenant's keyspace.
            raise ValueError(f"tenant_id may not contain '/': {self.tenant_id!r}")
        if self.plan not in PLAN_PRESETS:
            raise ValueError(
                f"unknown plan preset {self.plan!r}; "
                f"choose one of {sorted(PLAN_PRESETS)}"
            )
        if self.num_objects < 1:
            raise ValueError("num_objects must be >= 1")

    def to_dict(self) -> dict:
        return {
            "tenant_id": self.tenant_id,
            "seed": self.seed,
            "num_objects": self.num_objects,
            "plan": self.plan,
            "filter_backend": self.filter_backend,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "TenantSpec":
        return cls(
            tenant_id=str(record["tenant_id"]),
            seed=int(record["seed"]),  # type: ignore[arg-type]
            num_objects=int(record.get("num_objects", 8)),  # type: ignore[arg-type]
            plan=str(record.get("plan", "paper")),
            filter_backend=str(record.get("filter_backend", "particle")),
        )


class TenantWorld:
    """A spec expanded into the concrete objects the tracker needs.

    The expansion is deterministic (preset plan, uniform reader
    deployment, config derived only from the spec), so a worker process
    and the gateway independently reconstruct identical worlds.
    """

    def __init__(self, spec: TenantSpec, observability: bool = False) -> None:
        self.spec = spec
        self.config: SimulationConfig = DEFAULT_CONFIG.with_overrides(
            seed=spec.seed,
            num_objects=spec.num_objects,
            observability=observability,
        )
        self.plan: FloorPlan = PLAN_PRESETS[spec.plan]()
        self.readers: List[RFIDReader] = deploy_readers_uniform(
            self.plan, self.config.num_readers, self.config.activation_range
        )


def validate_tenants(specs: Sequence[TenantSpec]) -> List[TenantSpec]:
    """Reject empty or duplicate-id tenant sets; returns the list."""
    if not specs:
        raise ValueError("at least one tenant is required")
    seen: Dict[str, TenantSpec] = {}
    for spec in specs:
        if spec.tenant_id in seen:
            raise ValueError(f"duplicate tenant_id {spec.tenant_id!r}")
        seen[spec.tenant_id] = spec
    return list(specs)


def load_tenants(path: str) -> List[TenantSpec]:
    """Load tenant specs from a JSON file.

    Accepts either a bare list of spec records or an object with a
    ``"tenants"`` list (the manifest shape).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    records = document.get("tenants") if isinstance(document, dict) else document
    if not isinstance(records, list):
        raise ValueError(
            f"{path}: expected a JSON list of tenant specs "
            "or an object with a 'tenants' list"
        )
    return validate_tenants([TenantSpec.from_dict(record) for record in records])


def demo_tenants(
    count: int,
    base_seed: int = 101,
    num_objects: int = 8,
    plan: str = "paper",
    filter_backend: str = "particle",
) -> List[TenantSpec]:
    """N synthetic tenants with distinct seeds (demos, benches, tests)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [
        TenantSpec(
            tenant_id=f"tenant-{index}",
            seed=base_seed + 37 * index,
            num_objects=num_objects,
            plan=plan,
            filter_backend=filter_backend,
        )
        for index in range(count)
    ]
