"""The stdlib HTTP/JSON serving surface of the gateway.

Same machinery as the obs :class:`~repro.obs.expo.MetricsServer` — a
``ThreadingHTTPServer`` on a daemon thread, handler class closed over
its providers — but speaking the query protocol:

==========================  ===========================================
route                       meaning
==========================  ===========================================
``GET /``                   endpoint directory
``GET /healthz``            deployment health; **503 when degraded**
                            (dead partitions / partial ticks) — the
                            body still carries the full document, and
                            queries keep answering
``GET /readyz``             200 once every tenant has published a tick
``GET /metrics``            Prometheus text of the **fleet** snapshot:
                            coordinator series plus every worker's
                            registry with a ``partition`` label (the
                            coordinator re-polls worker telemetry on
                            each scrape)
``GET /snapshot``           the merged ``repro-trace`` document (what
                            ``repro top --url`` diffs; 404 when
                            observability is off)
``GET /alerts``             the gateway alert engine's summary (marked
                            ``enabled: false`` when no engine)
``GET /tenants``            tenant directory with tick counters
``GET /query/range``        ``?tenant=&min_x=&min_y=&max_x=&max_y=``
``GET /query/knn``          ``?tenant=&x=&y=&k=``
``GET /analytics``          ``?tenant=`` — that tenant's analytics
                            summary (404 if analytics is off)
``GET /sessions``           ``?tenant=[&id=]`` — list, or one result
``POST /sessions``          open a standing query (JSON body)
``DELETE /sessions``        ``?tenant=&id=``
==========================  ===========================================

Handlers only read coordinator state (under its lock) — the ingest
loop never blocks on HTTP traffic longer than one lock hold.

When observability is on, every request is timed into the
``gateway.http_latency{endpoint}`` histogram family (the per-endpoint
SLO signal) and counted in ``gateway.http_requests{endpoint}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, Type
from urllib.parse import parse_qs, urlparse

import repro.obs as obs
from repro.geometry import Point, Rect

from repro.gateway.coordinator import GatewayCoordinator, GatewayError


class _BadRequest(ValueError):
    """Maps to a 400 response."""


def _make_handler(
    coordinator: GatewayCoordinator,
) -> Type[BaseHTTPRequestHandler]:
    class GatewayRequestHandler(BaseHTTPRequestHandler):
        server_version = "repro-gateway/1"

        # -- plumbing --------------------------------------------------
        def _send_json(self, status: int, document: object) -> None:
            body = json.dumps(document, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, body: str) -> None:
            data = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _params(self) -> Dict[str, str]:
            query = parse_qs(urlparse(self.path).query)
            return {key: values[0] for key, values in query.items()}

        def _param(self, params: Dict[str, str], name: str) -> str:
            value = params.get(name)
            if value is None:
                raise _BadRequest(f"missing query parameter {name!r}")
            return value

        def _float(self, params: Dict[str, str], name: str) -> float:
            raw = self._param(params, name)
            try:
                return float(raw)
            except ValueError:
                raise _BadRequest(f"parameter {name!r} is not a number: {raw!r}")

        def _tenant(self, params: Dict[str, str]) -> str:
            tenant_id = self._param(params, "tenant")
            if tenant_id not in coordinator.tenant_ids():
                raise KeyError(tenant_id)
            return tenant_id

        def _dispatch(self, handler: str, route: str) -> None:
            if obs.enabled():
                obs.add("gateway.http_requests", labels={"endpoint": route})
                with obs.timer(
                    "gateway.http_latency", labels={"endpoint": route}
                ):
                    self._dispatch_inner(handler)
            else:
                self._dispatch_inner(handler)

        def _dispatch_inner(self, handler: str) -> None:
            try:
                getattr(self, handler)()
            except _BadRequest as exc:
                self._send_json(400, {"error": str(exc)})
            except KeyError as exc:
                self._send_json(404, {"error": f"unknown tenant or id: {exc}"})
            except GatewayError as exc:
                self._send_json(404, {"error": str(exc)})
            except BrokenPipeError:  # pragma: no cover - client went away
                pass
            except Exception as exc:  # noqa: BLE001 - surfaced as a 500
                self._send_json(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )

        # -- routes ----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            route = urlparse(self.path).path
            routes = {
                "/": "_get_root",
                "/healthz": "_get_healthz",
                "/readyz": "_get_readyz",
                "/metrics": "_get_metrics",
                "/snapshot": "_get_snapshot",
                "/alerts": "_get_alerts",
                "/tenants": "_get_tenants",
                "/query/range": "_get_range",
                "/query/knn": "_get_knn",
                "/analytics": "_get_analytics",
                "/sessions": "_get_sessions",
            }
            handler = routes.get(route)
            if handler is None:
                self._send_json(404, {"error": f"no route {route!r}"})
                return
            self._dispatch(handler, route)

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            route = urlparse(self.path).path
            if route != "/sessions":
                self._send_json(404, {"error": f"no route {route!r}"})
                return
            self._dispatch("_post_sessions", route)

        def do_DELETE(self) -> None:  # noqa: N802 - http.server API
            route = urlparse(self.path).path
            if route != "/sessions":
                self._send_json(404, {"error": f"no route {route!r}"})
                return
            self._dispatch("_delete_sessions", route)

        def _get_root(self) -> None:
            self._send_json(
                200,
                {
                    "service": "repro-gateway",
                    "endpoints": [
                        "/healthz",
                        "/readyz",
                        "/metrics",
                        "/snapshot",
                        "/alerts",
                        "/tenants",
                        "/query/range",
                        "/query/knn",
                        "/analytics",
                        "/sessions",
                    ],
                },
            )

        def _get_healthz(self) -> None:
            document = coordinator.health()
            status = 200 if document["status"] == "ok" else 503
            self._send_json(status, document)

        def _get_readyz(self) -> None:
            if coordinator.ready():
                self._send_json(200, {"ready": True})
            else:
                self._send_json(503, {"ready": False})

        def _get_metrics(self) -> None:
            from repro.obs.expo import render_prometheus

            if not obs.enabled():
                self._send_text(200, "# observability disabled\n")
                return
            coordinator.poll_telemetry(timeout=5.0)
            self._send_text(
                200, render_prometheus(coordinator.fleet_snapshot())
            )

        def _get_snapshot(self) -> None:
            if not obs.enabled():
                self._send_json(404, {"error": "observability disabled"})
                return
            coordinator.poll_telemetry(timeout=5.0)
            self._send_json(200, coordinator.fleet_snapshot())

        def _get_alerts(self) -> None:
            self._send_json(200, coordinator.alerts_summary())

        def _get_tenants(self) -> None:
            health = coordinator.health()
            tenants = []
            for tenant_id, spec in coordinator.tenants.items():
                record = dict(spec.to_dict())
                record.update(health["tenants"][tenant_id])  # type: ignore[index]
                tenants.append(record)
            self._send_json(200, {"tenants": tenants})

        def _get_range(self) -> None:
            params = self._params()
            tenant_id = self._tenant(params)
            window = Rect(
                self._float(params, "min_x"),
                self._float(params, "min_y"),
                self._float(params, "max_x"),
                self._float(params, "max_y"),
            )
            result = coordinator.query_range(tenant_id, window)
            snapshot = coordinator.latest_snapshot(tenant_id)
            self._send_json(
                200,
                {
                    "tenant": tenant_id,
                    "second": snapshot.second,
                    "query_id": result.query_id,
                    "probabilities": result.probabilities,
                },
            )

        def _get_knn(self) -> None:
            params = self._params()
            tenant_id = self._tenant(params)
            point = Point(self._float(params, "x"), self._float(params, "y"))
            k = int(self._float(params, "k"))
            if k < 1:
                raise _BadRequest("k must be >= 1")
            result = coordinator.query_knn(tenant_id, point, k)
            snapshot = coordinator.latest_snapshot(tenant_id)
            self._send_json(
                200,
                {
                    "tenant": tenant_id,
                    "second": snapshot.second,
                    "query_id": result.query_id,
                    "probabilities": result.probabilities,
                    "ranked": [
                        [object_id, probability]
                        for object_id, probability in result.ranked()
                    ],
                },
            )

        def _get_analytics(self) -> None:
            params = self._params()
            tenant_id = self._tenant(params)
            self._send_json(
                200,
                {
                    "tenant": tenant_id,
                    "summary": coordinator.analytics_summary(tenant_id),
                },
            )

        def _get_sessions(self) -> None:
            params = self._params()
            tenant_id = self._tenant(params)
            session_id = params.get("id")
            if session_id is None:
                self._send_json(
                    200,
                    {
                        "tenant": tenant_id,
                        "sessions": coordinator.sessions_info(tenant_id),
                    },
                )
                return
            result = coordinator.session_result(tenant_id, session_id)
            self._send_json(
                200,
                {
                    "tenant": tenant_id,
                    "session_id": session_id,
                    "result": result,
                },
            )

        def _post_sessions(self) -> None:
            length = int(self.headers.get("Content-Length", "0"))
            try:
                body = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as exc:
                raise _BadRequest(f"invalid JSON body: {exc}")
            if not isinstance(body, dict):
                raise _BadRequest("body must be a JSON object")
            tenant_id = str(body.get("tenant", ""))
            if tenant_id not in coordinator.tenant_ids():
                raise KeyError(tenant_id or "<missing tenant>")
            kind = body.get("kind")
            session_id = body.get("session_id")
            if kind == "range":
                try:
                    window = Rect(*[float(v) for v in body["window"]])
                except (KeyError, TypeError, ValueError):
                    raise _BadRequest(
                        "range session needs window: [min_x, min_y, max_x, max_y]"
                    )
                opened = coordinator.subscribe_range(
                    tenant_id, window, session_id=session_id
                )
            elif kind == "knn":
                try:
                    x, y = (float(v) for v in body["point"])
                    k = int(body["k"])
                except (KeyError, TypeError, ValueError):
                    raise _BadRequest("knn session needs point: [x, y] and k")
                opened = coordinator.subscribe_knn(
                    tenant_id, Point(x, y), k, session_id=session_id
                )
            else:
                raise _BadRequest("kind must be 'range' or 'knn'")
            self._send_json(
                201, {"tenant": tenant_id, "session_id": opened}
            )

        def _delete_sessions(self) -> None:
            params = self._params()
            tenant_id = self._tenant(params)
            session_id = self._param(params, "id")
            if not coordinator.unsubscribe(tenant_id, session_id):
                raise KeyError(session_id)
            self._send_json(
                200, {"tenant": tenant_id, "closed": session_id}
            )

        def log_message(self, format: str, *args: object) -> None:  # noqa: A002
            pass  # keep the serving loop's stdout clean

    return GatewayRequestHandler


class GatewayServer:
    """The gateway's HTTP listener on a daemon thread."""

    def __init__(
        self,
        coordinator: GatewayCoordinator,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(coordinator))
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GatewayServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-gateway-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
