"""``repro.gateway`` — partitioned multi-process tracking, multi-tenant.

The scale-out ring above :mod:`repro.service`: tracked objects are
partitioned across worker *processes* by a consistent-hash ring, each
worker runs one single-shard tracking service per tenant over its
slice, and the gateway merges the per-partition snapshots back into
one table per tenant — bit-identical to a single-process run at any
partition count, because filter randomness derives from
``(seed, second, object_id)`` and never from placement.

Layers:

* :mod:`repro.gateway.partitioning` — the consistent-hash ring;
* :mod:`repro.gateway.tenants` — tenant specs and deterministic worlds;
* :mod:`repro.gateway.worker` — the per-partition worker core/protocol;
* :mod:`repro.gateway.transport` — inline and forked-process handles;
* :mod:`repro.gateway.coordinator` — fan-out, fan-in, per-tenant
  sessions/analytics, health;
* :mod:`repro.gateway.checkpoint` — rolling per-partition checkpoints
  with coordinated (and re-partitioning) restore;
* :mod:`repro.gateway.server` — the stdlib HTTP/JSON query surface.
"""

from repro.gateway.checkpoint import (
    GATEWAY_CHECKPOINT_FORMAT,
    GATEWAY_CHECKPOINT_VERSION,
    GatewayCompatibilityError,
    load_checkpoint,
    merge_tenant_states,
    restore_coordinator,
    save_checkpoint,
    split_tenant_state,
)
from repro.gateway.coordinator import (
    GatewayCoordinator,
    GatewayError,
    GatewayProtocolError,
)
from repro.gateway.partitioning import DEFAULT_VNODES, HashRing
from repro.gateway.server import GatewayServer
from repro.gateway.tenants import (
    PLAN_PRESETS,
    TenantSpec,
    TenantWorld,
    demo_tenants,
    load_tenants,
    validate_tenants,
)
from repro.gateway.transport import (
    DEFAULT_QUEUE_DEPTH,
    GatewayWorkerError,
    InlineWorkerHandle,
    ProcessWorkerHandle,
    make_worker_handles,
)

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_VNODES",
    "GATEWAY_CHECKPOINT_FORMAT",
    "GATEWAY_CHECKPOINT_VERSION",
    "GatewayCompatibilityError",
    "GatewayCoordinator",
    "GatewayError",
    "GatewayProtocolError",
    "GatewayServer",
    "GatewayWorkerError",
    "HashRing",
    "InlineWorkerHandle",
    "PLAN_PRESETS",
    "ProcessWorkerHandle",
    "TenantSpec",
    "TenantWorld",
    "demo_tenants",
    "load_checkpoint",
    "load_tenants",
    "make_worker_handles",
    "merge_tenant_states",
    "restore_coordinator",
    "save_checkpoint",
    "split_tenant_state",
    "validate_tenants",
]
