"""Consistent-hash partitioning of ``(tenant, object)`` keys.

The gateway assigns every tracked object to exactly one worker
*process* (a partition). Assignment must be

* **deterministic** — the same key maps to the same partition on every
  host and every run, because checkpoint restore re-derives placement
  instead of persisting it;
* **stable under resize** — growing the ring from N to N+1 partitions
  should move ~1/(N+1) of the keys, not reshuffle everything, which
  keeps a different-partition-count restore from invalidating most of
  the per-object filter cache slices.

Both come from a classic consistent-hash ring: each partition owns
``vnodes`` pseudo-random points on a 64-bit circle (derived with
:func:`hashlib.blake2b`, never Python's randomized ``hash``), and a key
lands on the first point clockwise from its own hash.

Placement never feeds the filters' RNG streams — every filter run draws
from ``(seed, second, object_id)`` — so *any* assignment yields
bit-identical tracking output; the ring only shapes load balance and
resize churn.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

#: Virtual nodes per partition. 64 keeps the expected imbalance of the
#: largest partition under ~20% for small partition counts.
DEFAULT_VNODES = 64


def hash_key(key: str) -> int:
    """Stable 64-bit hash of a ring key (blake2b, platform-independent)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def ring_key(tenant_id: str, object_id: str) -> str:
    """The ring key of one tenant's object (tenant ids never contain '/')."""
    return f"{tenant_id}/{object_id}"


class HashRing:
    """A fixed-size consistent-hash ring over worker partitions."""

    def __init__(self, num_partitions: int, vnodes: int = DEFAULT_VNODES) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.num_partitions = num_partitions
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for partition in range(num_partitions):
            for replica in range(vnodes):
                points.append(
                    (hash_key(f"partition-{partition}#vnode-{replica}"), partition)
                )
        points.sort()
        self._hashes: List[int] = [point for point, _ in points]
        self._owners: List[int] = [owner for _, owner in points]

    def partition_of(self, tenant_id: str, object_id: str) -> int:
        """The partition owning one tenant's object."""
        point = hash_key(ring_key(tenant_id, object_id))
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def spread(
        self, tenant_id: str, object_ids: Iterable[str]
    ) -> Dict[int, List[str]]:
        """Group object ids by owning partition (all partitions present)."""
        groups: Dict[int, List[str]] = {
            partition: [] for partition in range(self.num_partitions)
        }
        for object_id in object_ids:
            groups[self.partition_of(tenant_id, object_id)].append(object_id)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashRing(num_partitions={self.num_partitions}, "
            f"vnodes={self.vnodes})"
        )
