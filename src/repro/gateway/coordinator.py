"""The gateway coordinator: ingest fan-out, snapshot fan-in, serving.

One :class:`GatewayCoordinator` owns the whole deployment:

* the consistent-hash **ring** mapping every ``(tenant, object)`` to a
  worker partition;
* the worker **handles** (inline or forked; see
  :mod:`repro.gateway.transport`);
* per-tenant **serving state** — the last merged snapshot, the standing
  query sessions, and (optionally) the analytics engine. Queries are
  answered here, at the gateway, from merged snapshots; workers only
  filter.

Write path: :meth:`submit_tick` splits a tenant's second of readings by
ring owner and enqueues one sub-tick per partition — *every* partition,
including ones whose slice is empty, because previously seen objects
keep filtering on quiet seconds. :meth:`collect_tick` barriers on the
sub-snapshots of the oldest outstanding tick, merges them in partition
order (object sets are disjoint, so merge order cannot change the
table), publishes the merged snapshot, and fans session deltas out.

Consistency: per-object RNG streams + disjoint per-partition object
sets + order-insensitive query evaluation ⇒ the merged table is
bit-identical to a single-process :class:`TrackingService` run at any
partition count. The tests assert this for 1, 2, and 4 partitions.

Failure: a dead worker degrades the deployment instead of failing it —
its sub-snapshots stop arriving, ticks complete as *partial* over the
surviving partitions, :meth:`health` reports ``degraded``, and queries
keep answering from what survives. Shed sub-ticks (opt-in ``"shed"``
queue policy) are handled the same way: the barrier is told not to wait
for them.

Fleet telemetry (all off unless observability is on): the coordinator
stamps every fan-out with a ``tenant/second`` trace context that the
workers echo into their tick spans, measures each partition's barrier
wait, feeds a per-tick SLO record into an optional
:class:`~repro.obs.alerts.AlertEngine` (straggler / shed-surge /
barrier-stall / ESS-collapse rules), and — on the process transport —
periodically pulls each worker's metric registry over the pipe
(``telemetry`` op). :meth:`fleet_snapshot` merges those per-worker
registries into one document with a ``partition`` label on every
worker series and a per-process id on every span, which is what
``/metrics`` scrapes and ``--trace`` exports. None of this touches any
RNG, so telemetry on/off cannot change a query answer.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.analytics.engine import AnalyticsEngine
from repro.geometry import Point, Rect
from repro.graph.anchors import AnchorIndex, build_anchor_index
from repro.graph.walking_graph import WalkingGraph, build_walking_graph
from repro.index.hashtable import AnchorObjectTable
from repro.queries.continuous import ResultDelta
from repro.queries.knn_query import evaluate_knn_query
from repro.queries.range_query import evaluate_range_query
from repro.queries.types import KNNQuery, KNNResult, RangeQuery, RangeResult
from repro.service.ingest import ReadingBatch
from repro.service.sessions import SessionManager
from repro.service.tracking import ServiceSnapshot

from repro.gateway.partitioning import DEFAULT_VNODES, HashRing
from repro.gateway.tenants import TenantSpec, TenantWorld, validate_tenants
from repro.gateway.transport import (
    DEFAULT_QUEUE_DEPTH,
    GatewayWorkerError,
    make_worker_handles,
)
from repro.gateway.worker import encode_readings


#: Cap on worker spans retained for the merged trace (the tracer's own
#: per-process cap bounds each poll; this bounds the accumulation).
MAX_FLEET_SPANS = 100_000


def _wall() -> float:
    import time

    return time.monotonic()


def _trace_context(tenant_id: str, second: int) -> str:
    """The trace id stamped on a tick's fan-out and echoed by workers."""
    return f"{tenant_id}/{second}"


class GatewayError(RuntimeError):
    """A gateway-level operational failure."""


class GatewayProtocolError(GatewayError):
    """A worker reply that violates the fan-in protocol (FIFO mismatch)."""


@dataclass
class _TenantServing:
    """Gateway-side state of one tenant (never crosses a process)."""

    world: TenantWorld
    graph: WalkingGraph
    anchor_index: AnchorIndex
    sessions: SessionManager
    snapshot: ServiceSnapshot
    analytics: Optional[AnalyticsEngine] = None
    ticks: int = 0
    last_second: Optional[int] = None
    partial_ticks: int = 0
    shed_subticks: int = 0


@dataclass
class _PendingTick:
    tenant_id: str
    second: int
    parts: List[int] = field(default_factory=list)


class GatewayCoordinator:
    """Partitioned multi-tenant tracking behind one serving surface."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        num_partitions: int = 2,
        transport: str = "process",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        shed_policy: str = "block",
        vnodes: int = DEFAULT_VNODES,
        report_threshold: float = 0.05,
        min_change: float = 0.10,
        observability: Optional[bool] = None,
        telemetry_interval: int = 8,
    ) -> None:
        specs = validate_tenants(tenants)
        self.num_partitions = num_partitions
        self.transport = transport
        # None means "follow the gateway process": workers inherit the
        # obs switch the coordinator was built under, so `obs.enable()`
        # before construction is all a caller needs for fleet telemetry.
        self.observability = (
            obs.enabled() if observability is None else bool(observability)
        )
        self.telemetry_interval = telemetry_interval
        self.ring = HashRing(num_partitions, vnodes)
        self.tenants: Dict[str, TenantSpec] = {
            spec.tenant_id: spec for spec in specs
        }
        self._serving: Dict[str, _TenantServing] = {}
        for spec in specs:
            world = TenantWorld(spec)
            graph = build_walking_graph(world.plan)
            anchor_index = build_anchor_index(graph, world.config.anchor_spacing)
            self._serving[spec.tenant_id] = _TenantServing(
                world=world,
                graph=graph,
                anchor_index=anchor_index,
                sessions=SessionManager(
                    world.plan,
                    graph,
                    anchor_index,
                    report_threshold=report_threshold,
                    min_change=min_change,
                ),
                snapshot=ServiceSnapshot(second=-1, table=AnchorObjectTable()),
            )
        self.handles = make_worker_handles(
            specs,
            num_partitions,
            transport,
            queue_depth,
            shed_policy,
            observability=self.observability,
        )
        # One reentrant lock guards serving state and the pending queue;
        # HTTP handler threads read under it while the ingest loop
        # publishes under it.
        self._lock = threading.RLock()
        self._pending: Deque[_PendingTick] = deque()
        # Control round-trips (state/restore/telemetry) must not
        # interleave: each consumes "the next non-snapshot reply" off
        # its handle, so two concurrent callers could swap replies.
        # Always acquired before self._lock, never after (LOCKORDER).
        self._control_lock = threading.Lock()
        # -- fleet-telemetry state (all guarded by the same lock) ------
        self._collected_ticks = 0
        #: partition -> (collect sequence number, second) of its last
        #: contributed sub-snapshot; the health doc derives last-tick
        #: age from the sequence gap, which stays meaningful even when
        #: tenants tick at different rates.
        self._partition_last: Dict[int, Tuple[int, int]] = {}
        self._partition_sheds: Dict[int, int] = {}
        self._sheds_since_record = 0
        self._last_tick_wall: Optional[float] = None
        self._worker_metrics: Dict[int, dict] = {}
        self._worker_spans: List[dict] = []
        self._worker_spans_dropped = 0
        self._ess_prev: Tuple[int, float, int] = (0, 0.0, 0)
        self._alerts: Optional[Any] = None
        self._last_slo: Optional[dict] = None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def submit_tick(self, tenant_id: str, batch: ReadingBatch) -> None:
        """Fan one tenant-second out to every live partition."""
        self._tenant(tenant_id)  # validate
        split: Dict[int, List[dict]] = {
            handle.index: [] for handle in self.handles  # type: ignore[attr-defined]
        }
        for reading in batch.readings:
            partition = self.ring.partition_of(tenant_id, reading.tag_id)
            split[partition].append(
                {
                    "time": reading.time,
                    "tag_id": reading.tag_id,
                    "reader_id": reading.reader_id,
                }
            )
        entry = _PendingTick(tenant_id=tenant_id, second=batch.second)
        trace = _trace_context(tenant_id, batch.second)
        with self._lock:
            self._pending.append(entry)
        with obs.span(
            "gateway.fanout", trace=trace, tenant=tenant_id, second=batch.second
        ):
            for handle in self.handles:
                if not handle.alive():  # type: ignore[attr-defined]
                    continue
                message = {
                    "op": "tick",
                    "tenant": tenant_id,
                    "second": batch.second,
                    "readings": split[handle.index],  # type: ignore[attr-defined]
                }
                if self.observability:
                    message["trace"] = trace
                shed = handle.submit_tick(message)  # type: ignore[attr-defined]
                own_shed = False
                for shed_tenant, shed_second in shed:
                    if shed_tenant == tenant_id and shed_second == batch.second:
                        own_shed = True
                    self._record_shed(shed_tenant, shed_second, handle.index)  # type: ignore[attr-defined]
                if not own_shed:
                    with self._lock:
                        entry.parts.append(handle.index)  # type: ignore[attr-defined]
        if obs.enabled():
            obs.add(
                "gateway.readings",
                len(batch.readings),
                labels={"tenant": tenant_id},
            )
            obs.add("gateway.subticks", len(entry.parts), labels={"tenant": tenant_id})

    def _record_shed(self, tenant_id: str, second: int, partition: int) -> None:
        """Un-expect a shed sub-tick so fan-in never waits for it."""
        with self._lock:
            for entry in self._pending:
                if (
                    entry.tenant_id == tenant_id
                    and entry.second == second
                    and partition in entry.parts
                ):
                    entry.parts.remove(partition)
                    break
            serving = self._serving.get(tenant_id)
            if serving is not None:
                serving.shed_subticks += 1
            self._partition_sheds[partition] = (
                self._partition_sheds.get(partition, 0) + 1
            )
            self._sheds_since_record += 1
        obs.add(
            "gateway.shed_subticks",
            labels={"tenant": tenant_id, "partition": partition},
        )
        obs.add("gateway.sheds", labels={"partition": partition})

    def collect_tick(
        self, timeout: Optional[float] = 30.0
    ) -> Tuple[str, int, List[ResultDelta]]:
        """Barrier on the oldest outstanding tick; publish its merge.

        Returns ``(tenant_id, second, session deltas)``. Partitions that
        died since submit simply stop contributing — the tick completes
        as partial and health turns ``degraded``.
        """
        with self._lock:
            if not self._pending:
                raise GatewayError("no outstanding tick to collect")
            entry = self._pending.popleft()
        trace = _trace_context(entry.tenant_id, entry.second)
        started = _wall()
        replies: Dict[int, dict] = {}
        waits: Dict[int, float] = {}
        missing: List[int] = []
        for index in list(entry.parts):
            wait_start = _wall()
            with obs.span("gateway.barrier_wait", trace=trace, partition=index):
                reply = self.handles[index].next_snapshot(timeout=timeout)  # type: ignore[attr-defined]
            waits[index] = _wall() - wait_start
            if reply is None:
                missing.append(index)
                continue
            if (
                reply.get("tenant") != entry.tenant_id
                or reply.get("second") != entry.second
            ):
                raise GatewayProtocolError(
                    f"partition {index} replied for "
                    f"({reply.get('tenant')!r}, {reply.get('second')!r}) "
                    f"while collecting ({entry.tenant_id!r}, {entry.second})"
                )
            replies[index] = reply
        merged = AnchorObjectTable()
        candidates: set = set()
        for index in sorted(replies):
            reply = replies[index]
            entries = reply["entries"]
            for object_id in sorted(entries):
                merged.set_distribution(object_id, entries[object_id])
            candidates.update(reply["candidates"])
        snapshot = ServiceSnapshot(
            second=entry.second, table=merged, candidates=frozenset(candidates)
        )
        with self._lock:
            serving = self._serving[entry.tenant_id]
            serving.snapshot = snapshot
            serving.ticks += 1
            serving.last_second = entry.second
            if missing:
                serving.partial_ticks += 1
            deltas = serving.sessions.publish(entry.second, merged)
            if serving.analytics is not None:
                serving.analytics.observe_snapshot(snapshot)
        if obs.enabled():
            labels = {"tenant": entry.tenant_id}
            obs.add("gateway.ticks", labels=labels)
            if missing:
                obs.add("gateway.partial_ticks", labels=labels)
            obs.gauge_set(
                "gateway.tracked_objects", len(merged.objects()), labels=labels
            )
            for index, wait in waits.items():
                obs.observe(
                    "gateway.barrier_wait_seconds",
                    wait,
                    labels={"partition": index},
                )
        wall = _wall() - started
        with self._lock:
            self._collected_ticks += 1
            sequence = self._collected_ticks
            for index in replies:
                self._partition_last[index] = (sequence, entry.second)
            self._last_tick_wall = wall
            sheds = self._sheds_since_record
            self._sheds_since_record = 0
        self._observe_slo(entry, replies, waits, missing, sheds, wall, sequence)
        if (
            self.observability
            and self.transport == "process"
            and self.telemetry_interval > 0
            and sequence % self.telemetry_interval == 0
        ):
            self.poll_telemetry(timeout=timeout)
        return entry.tenant_id, entry.second, deltas

    def process_batch(
        self, tenant_id: str, batch: ReadingBatch
    ) -> List[ResultDelta]:
        """Submit + collect one tenant-second (the unpipelined path)."""
        self.submit_tick(tenant_id, batch)
        _, _, deltas = self.collect_tick()
        return deltas

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # read path (served from merged snapshots at the gateway)
    # ------------------------------------------------------------------
    def _tenant(self, tenant_id: str) -> _TenantServing:
        serving = self._serving.get(tenant_id)
        if serving is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        return serving

    def tenant_ids(self) -> List[str]:
        return list(self._serving)

    def latest_snapshot(self, tenant_id: str) -> ServiceSnapshot:
        with self._lock:
            return self._tenant(tenant_id).snapshot

    def query_range(
        self, tenant_id: str, window: Rect, query_id: str = "gateway-range"
    ) -> RangeResult:
        serving = self._tenant(tenant_id)
        with self._lock:
            snapshot = serving.snapshot
        obs.add("gateway.queries", labels={"tenant": tenant_id, "query": "range"})
        return evaluate_range_query(
            RangeQuery(query_id, window),
            serving.world.plan,
            serving.anchor_index,
            snapshot.table,
        )

    def query_knn(
        self, tenant_id: str, point: Point, k: int, query_id: str = "gateway-knn"
    ) -> KNNResult:
        serving = self._tenant(tenant_id)
        with self._lock:
            snapshot = serving.snapshot
        obs.add("gateway.queries", labels={"tenant": tenant_id, "query": "knn"})
        return evaluate_knn_query(
            KNNQuery(query_id, point, k),
            serving.graph,
            serving.anchor_index,
            snapshot.table,
        )

    # -- standing sessions ---------------------------------------------
    def subscribe_range(
        self, tenant_id: str, window: Rect, session_id: Optional[str] = None
    ) -> str:
        with self._lock:
            return self._tenant(tenant_id).sessions.subscribe_range(
                window, session_id=session_id
            )

    def subscribe_knn(
        self,
        tenant_id: str,
        point: Point,
        k: int,
        session_id: Optional[str] = None,
    ) -> str:
        with self._lock:
            return self._tenant(tenant_id).sessions.subscribe_knn(
                point, k, session_id=session_id
            )

    def unsubscribe(self, tenant_id: str, session_id: str) -> bool:
        with self._lock:
            return self._tenant(tenant_id).sessions.unsubscribe(session_id)

    def session_result(self, tenant_id: str, session_id: str) -> Dict[str, float]:
        with self._lock:
            return self._tenant(tenant_id).sessions.current_result(session_id)

    def sessions_info(self, tenant_id: str) -> List[Dict[str, object]]:
        with self._lock:
            subs = self._tenant(tenant_id).sessions.subscriptions()
            return [
                {
                    "session_id": sub.session_id,
                    "kind": sub.kind,
                    "deltas_delivered": sub.deltas_delivered,
                    "description": sub.describe(),
                }
                for sub in subs
            ]

    # -- analytics ------------------------------------------------------
    def enable_analytics(self, tenant_id: Optional[str] = None) -> None:
        """Attach analytics engines (all tenants, or one)."""
        with self._lock:
            targets = [tenant_id] if tenant_id is not None else self.tenant_ids()
            for tid in targets:
                serving = self._tenant(tid)
                if serving.analytics is None:
                    serving.analytics = AnalyticsEngine(
                        serving.world.plan, serving.anchor_index
                    )

    def analytics_summary(self, tenant_id: str) -> Dict[str, object]:
        with self._lock:
            serving = self._tenant(tenant_id)
            if serving.analytics is None:
                raise GatewayError(
                    f"analytics is not enabled for tenant {tenant_id!r}; "
                    "start the gateway with analytics on"
                )
            return serving.analytics.summary()

    # ------------------------------------------------------------------
    # fleet telemetry
    # ------------------------------------------------------------------
    def _observe_slo(
        self,
        entry: _PendingTick,
        replies: Dict[int, dict],
        waits: Dict[int, float],
        missing: List[int],
        sheds: int,
        wall: float,
        sequence: int,
    ) -> None:
        """Distill one collected tick into an SLO record; feed alerts.

        Counts (sheds, missing partitions, ESS collapses) are
        deterministic; the barrier-wait fields are wall-clock-valued and
        only ever feed alerting, never query evaluation.
        """
        worker_obs = [
            reply["obs"]
            for reply in replies.values()
            if isinstance(reply.get("obs"), dict)
        ]
        collapses: Optional[int] = None
        ess_means: List[float] = []
        if worker_obs:
            collapses = sum(
                int(record.get("ess_collapses") or 0) for record in worker_obs
            )
            ess_means = [
                float(record["ess_mean"])
                for record in worker_obs
                if isinstance(record.get("ess_mean"), (int, float))
            ]
        elif obs.enabled():
            # Inline cores write into the gateway's own registry, so
            # the per-tick delta is read off directly.
            collapses, mean = self._ess_delta()
            if mean is not None:
                ess_means = [mean]
        # A partition is missing whether it died mid-barrier (in
        # ``missing``) or was already dead at submit and never entered
        # the tick at all — the alert must keep firing either way.
        dead = sum(
            1
            for handle in self.handles
            if not handle.alive()  # type: ignore[attr-defined]
        )
        gateway: Dict[str, object] = {
            "tenant": entry.tenant_id,
            "partitions": len(replies),
            "missing_partitions": max(len(missing), dead),
            "sheds": sheds,
            "barrier_wait_max": max(waits.values()) if waits else 0.0,
            "barrier_wait_total": sum(waits.values()) if waits else 0.0,
        }
        if len(waits) > 1:
            mean_wait = sum(waits.values()) / len(waits)
            if mean_wait > 0.0:
                gateway["straggler_ratio"] = max(waits.values()) / mean_wait
        if collapses is not None:
            gateway["worker_ess_collapses"] = collapses
        if ess_means:
            gateway["worker_ess_mean"] = sum(ess_means) / len(ess_means)
        record: Dict[str, object] = {
            "tick": sequence,
            "second": entry.second,
            "wall_seconds": wall,
            "gateway": gateway,
        }
        with self._lock:
            self._last_slo = record
            engine = self._alerts
        if engine is not None:
            engine.observe_epoch(record)

    def _ess_delta(self) -> Tuple[int, Optional[float]]:
        """ESS statistics accrued in this process since the last call."""
        registry = obs.registry()
        count = 0
        total = 0.0
        for series in registry.series_of("filter.ess"):
            if series.get("type") == "histogram":
                count += int(series.get("count", 0))  # type: ignore[arg-type]
                total += float(series.get("total", 0.0))  # type: ignore[arg-type]
        collapses = registry.counter_total("filter.ess_collapses")
        prev_count, prev_total, prev_collapses = self._ess_prev
        self._ess_prev = (count, total, collapses)
        delta_count = count - prev_count
        delta_total = total - prev_total
        mean = delta_total / delta_count if delta_count > 0 else None
        return collapses - prev_collapses, mean

    def last_slo(self) -> Optional[dict]:
        """The most recent per-tick SLO record (None before any tick)."""
        with self._lock:
            return self._last_slo

    def enable_alerts(
        self,
        rules: Optional[Sequence[object]] = None,
        writer: Optional[object] = None,
    ) -> None:
        """Attach an alert engine fed by every collected tick's record."""
        from repro.obs.alerts import AlertEngine, gateway_rules

        with self._lock:
            if self._alerts is None:
                selected = (
                    gateway_rules() if rules is None else list(rules)
                )
                self._alerts = AlertEngine(rules=selected, writer=writer)  # type: ignore[arg-type]

    def alerts_summary(self) -> Dict[str, object]:
        """The ``/alerts`` document (marked disabled when no engine)."""
        with self._lock:
            engine = self._alerts
        if engine is None:
            return {
                "format": "repro-alert-events",
                "version": 1,
                "enabled": False,
                "active_count": 0,
                "rules": [],
            }
        document: Dict[str, object] = engine.summary()
        document["enabled"] = True
        return document

    def poll_telemetry(self, timeout: Optional[float] = 30.0) -> List[int]:
        """Pull each live worker's registry snapshot and fresh spans.

        Process transport only (inline cores share this process's
        registry — federating it would double-count). The poll rides
        the same FIFO pipe as ticks, so it never reorders ahead of
        queued work; a dead or timed-out worker is simply skipped and
        its last cached snapshot keeps serving.
        """
        if self.transport != "process":
            return []
        polled: List[int] = []
        with self._control_lock:
            for handle in self.handles:
                if not handle.alive():  # type: ignore[attr-defined]
                    continue
                try:
                    reply = handle.call({"op": "telemetry"}, timeout=timeout)  # type: ignore[attr-defined]
                except GatewayWorkerError:
                    continue
                if not reply.get("enabled"):
                    continue
                index = int(reply["partition"])
                spans = reply.get("spans") or []
                with self._lock:
                    self._worker_metrics[index] = dict(
                        reply.get("metrics") or {}
                    )
                    for span in spans:
                        record = dict(span)
                        record["process"] = index + 1
                        self._worker_spans.append(record)
                    overflow = len(self._worker_spans) - MAX_FLEET_SPANS
                    if overflow > 0:
                        del self._worker_spans[:overflow]
                        self._worker_spans_dropped += overflow
                polled.append(index)
        return polled

    def fleet_snapshot(
        self, meta: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """One merged ``repro-trace`` document for the whole deployment.

        Coordinator metrics and spans come from this process's
        registry; every cached worker registry is folded in with a
        ``partition`` label added to each series, and every span gets a
        process id (0 = the gateway, ``partition + 1`` = that worker)
        plus a ``trace.processes`` name map the Chrome exporter turns
        into process rows. Inline transports share the gateway
        registry, so the base snapshot already holds everything and
        nothing is folded in.
        """
        fleet_meta: Dict[str, object] = {
            "gateway_partitions": self.num_partitions,
            "gateway_transport": self.transport,
        }
        if meta:
            fleet_meta.update(meta)
        document = obs.snapshot(meta=fleet_meta)
        metrics = document.get("metrics")
        trace = document.get("trace")
        assert isinstance(metrics, dict) and isinstance(trace, dict)
        with self._lock:
            worker_metrics = dict(sorted(self._worker_metrics.items()))
            worker_spans = [dict(span) for span in self._worker_spans]
            spans_dropped = self._worker_spans_dropped
        spans = trace.setdefault("spans", [])
        assert isinstance(spans, list)
        for span in spans:
            span.setdefault("process", 0)
        processes: Dict[str, str] = {"0": "gateway"}
        for index, snapshot in worker_metrics.items():
            processes[str(index + 1)] = f"partition-{index}"
            for kind in ("counters", "gauges", "histograms"):
                items = snapshot.get(kind) or []
                target = metrics.setdefault(kind, [])
                for item in items:
                    merged = dict(item)
                    labels = dict(merged.get("labels") or {})
                    labels["partition"] = str(index)
                    merged["labels"] = labels
                    target.append(merged)
        for span in worker_spans:
            processes.setdefault(
                str(span.get("process")), f"partition-{int(span['process']) - 1}"
            )
        spans.extend(worker_spans)
        spans.sort(key=lambda span: float(span.get("start") or 0.0))
        trace["processes"] = processes
        trace["dropped"] = int(trace.get("dropped") or 0) + spans_dropped
        for kind in ("counters", "gauges", "histograms"):
            series = metrics.get(kind)
            if isinstance(series, list):
                series.sort(
                    key=lambda item: (
                        str(item.get("name")),
                        sorted((item.get("labels") or {}).items()),
                    )
                )
        return document

    # ------------------------------------------------------------------
    # health / checkpoint support
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """The deployment health document (the ``/healthz`` body).

        Per-partition detail: ``queue_depth`` (messages queued toward
        the worker right now), cumulative ``sheds``, the ``last_second``
        it contributed a sub-snapshot for, and ``last_tick_age`` — how
        many collected ticks ago that was (0 = contributed to the most
        recent tick; ``null`` = never heard from).
        """
        workers = []
        dead = 0
        with self._lock:
            collected = self._collected_ticks
            partition_last = dict(self._partition_last)
            partition_sheds = dict(self._partition_sheds)
            last_tick_wall = self._last_tick_wall
        for handle in self.handles:
            alive = handle.alive()  # type: ignore[attr-defined]
            if not alive:
                dead += 1
            index = handle.index  # type: ignore[attr-defined]
            last = partition_last.get(index)
            workers.append(
                {
                    "partition": index,
                    "alive": alive,
                    "transport": handle.transport,  # type: ignore[attr-defined]
                    "queue_depth": handle.pending_depth(),  # type: ignore[attr-defined]
                    "sheds": partition_sheds.get(index, 0),
                    "last_second": None if last is None else last[1],
                    "last_tick_age": (
                        None if last is None else collected - last[0]
                    ),
                }
            )
        with self._lock:
            tenants = {
                tenant_id: {
                    "ticks": serving.ticks,
                    "last_second": serving.last_second,
                    "partial_ticks": serving.partial_ticks,
                    "shed_subticks": serving.shed_subticks,
                    "open_sessions": len(serving.sessions),
                    "analytics": serving.analytics is not None,
                }
                for tenant_id, serving in self._serving.items()
            }
            pending = len(self._pending)
        degraded = dead > 0 or any(t["partial_ticks"] for t in tenants.values())
        seconds = [t["last_second"] for t in tenants.values()]
        known = [s for s in seconds if isinstance(s, int)]
        return {
            "status": "degraded" if degraded else "ok",
            "partitions": self.num_partitions,
            "dead_partitions": dead,
            "pending_ticks": pending,
            "ticks": collected,
            "last_second": max(known) if known else None,
            "last_tick_seconds": last_tick_wall,
            "workers": workers,
            "tenants": tenants,
        }

    def ready(self) -> bool:
        """Every tenant has published at least one snapshot."""
        with self._lock:
            return all(serving.ticks > 0 for serving in self._serving.values())

    def partition_states(self) -> Dict[int, Dict[str, dict]]:
        """Every live partition's per-tenant service state (for checkpoints).

        Refuses while ticks are outstanding (worker state would run
        ahead of the gateway's session/analytics state) or while any
        partition is dead (its slice of the world would be silently
        dropped from the checkpoint).
        """
        with self._lock:
            if self._pending:
                raise GatewayError(
                    "collect all outstanding ticks before checkpointing"
                )
        states: Dict[int, Dict[str, dict]] = {}
        with self._control_lock:
            for handle in self.handles:
                if not handle.alive():  # type: ignore[attr-defined]
                    raise GatewayError(
                        f"cannot checkpoint: partition {handle.index} is dead"  # type: ignore[attr-defined]
                    )
                reply = handle.call({"op": "state"}, timeout=60.0)  # type: ignore[attr-defined]
                states[handle.index] = reply["tenants"]  # type: ignore[attr-defined]
        return states

    def state_dict(self) -> dict:
        """The gateway-level manifest state (ring, tenants, serving)."""
        with self._lock:
            return {
                "partitions": self.num_partitions,
                "vnodes": self.ring.vnodes,
                "tenants": [spec.to_dict() for spec in self.tenants.values()],
                "serving": {
                    tenant_id: {
                        "ticks": serving.ticks,
                        "last_second": serving.last_second,
                        "partial_ticks": serving.partial_ticks,
                        "shed_subticks": serving.shed_subticks,
                        "sessions": serving.sessions.state_dict(),
                        "analytics": (
                            serving.analytics.state_dict()
                            if serving.analytics is not None
                            else None
                        ),
                    }
                    for tenant_id, serving in self._serving.items()
                },
            }

    def restore_serving(self, state: Dict[str, dict]) -> None:
        """Restore gateway-side per-tenant state from a manifest."""
        with self._lock:
            for tenant_id, record in state.items():
                serving = self._tenant(tenant_id)
                serving.ticks = int(record["ticks"])
                last = record["last_second"]
                serving.last_second = None if last is None else int(last)
                serving.partial_ticks = int(record.get("partial_ticks", 0))
                serving.shed_subticks = int(record.get("shed_subticks", 0))
                serving.sessions.restore_state(record["sessions"])
                analytics_state = record.get("analytics")
                if analytics_state is not None:
                    self.enable_analytics(tenant_id)
                    analytics = serving.analytics
                    assert analytics is not None
                    analytics.restore_state(analytics_state)

    def restore_partitions(self, slices: Dict[int, Dict[str, dict]]) -> None:
        """Push checkpoint slices into the workers (one call each)."""
        with self._control_lock:
            for handle in self.handles:
                payload = slices.get(handle.index)  # type: ignore[attr-defined]
                if payload is None:
                    continue
                try:
                    handle.call({"op": "restore", "tenants": payload}, timeout=60.0)  # type: ignore[attr-defined]
                except GatewayWorkerError as exc:
                    raise GatewayError(
                        f"restore failed on partition {handle.index}: {exc}"  # type: ignore[attr-defined]
                    ) from exc

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for handle in self.handles:
            handle.close()  # type: ignore[attr-defined]

    def __enter__(self) -> "GatewayCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
