"""The gateway coordinator: ingest fan-out, snapshot fan-in, serving.

One :class:`GatewayCoordinator` owns the whole deployment:

* the consistent-hash **ring** mapping every ``(tenant, object)`` to a
  worker partition;
* the worker **handles** (inline or forked; see
  :mod:`repro.gateway.transport`);
* per-tenant **serving state** — the last merged snapshot, the standing
  query sessions, and (optionally) the analytics engine. Queries are
  answered here, at the gateway, from merged snapshots; workers only
  filter.

Write path: :meth:`submit_tick` splits a tenant's second of readings by
ring owner and enqueues one sub-tick per partition — *every* partition,
including ones whose slice is empty, because previously seen objects
keep filtering on quiet seconds. :meth:`collect_tick` barriers on the
sub-snapshots of the oldest outstanding tick, merges them in partition
order (object sets are disjoint, so merge order cannot change the
table), publishes the merged snapshot, and fans session deltas out.

Consistency: per-object RNG streams + disjoint per-partition object
sets + order-insensitive query evaluation ⇒ the merged table is
bit-identical to a single-process :class:`TrackingService` run at any
partition count. The tests assert this for 1, 2, and 4 partitions.

Failure: a dead worker degrades the deployment instead of failing it —
its sub-snapshots stop arriving, ticks complete as *partial* over the
surviving partitions, :meth:`health` reports ``degraded``, and queries
keep answering from what survives. Shed sub-ticks (opt-in ``"shed"``
queue policy) are handled the same way: the barrier is told not to wait
for them.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.analytics.engine import AnalyticsEngine
from repro.geometry import Point, Rect
from repro.graph.anchors import AnchorIndex, build_anchor_index
from repro.graph.walking_graph import WalkingGraph, build_walking_graph
from repro.index.hashtable import AnchorObjectTable
from repro.queries.continuous import ResultDelta
from repro.queries.knn_query import evaluate_knn_query
from repro.queries.range_query import evaluate_range_query
from repro.queries.types import KNNQuery, KNNResult, RangeQuery, RangeResult
from repro.service.ingest import ReadingBatch
from repro.service.sessions import SessionManager
from repro.service.tracking import ServiceSnapshot

from repro.gateway.partitioning import DEFAULT_VNODES, HashRing
from repro.gateway.tenants import TenantSpec, TenantWorld, validate_tenants
from repro.gateway.transport import (
    DEFAULT_QUEUE_DEPTH,
    GatewayWorkerError,
    make_worker_handles,
)
from repro.gateway.worker import encode_readings


class GatewayError(RuntimeError):
    """A gateway-level operational failure."""


class GatewayProtocolError(GatewayError):
    """A worker reply that violates the fan-in protocol (FIFO mismatch)."""


@dataclass
class _TenantServing:
    """Gateway-side state of one tenant (never crosses a process)."""

    world: TenantWorld
    graph: WalkingGraph
    anchor_index: AnchorIndex
    sessions: SessionManager
    snapshot: ServiceSnapshot
    analytics: Optional[AnalyticsEngine] = None
    ticks: int = 0
    last_second: Optional[int] = None
    partial_ticks: int = 0
    shed_subticks: int = 0


@dataclass
class _PendingTick:
    tenant_id: str
    second: int
    parts: List[int] = field(default_factory=list)


class GatewayCoordinator:
    """Partitioned multi-tenant tracking behind one serving surface."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        num_partitions: int = 2,
        transport: str = "process",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        shed_policy: str = "block",
        vnodes: int = DEFAULT_VNODES,
        report_threshold: float = 0.05,
        min_change: float = 0.10,
    ) -> None:
        specs = validate_tenants(tenants)
        self.num_partitions = num_partitions
        self.transport = transport
        self.ring = HashRing(num_partitions, vnodes)
        self.tenants: Dict[str, TenantSpec] = {
            spec.tenant_id: spec for spec in specs
        }
        self._serving: Dict[str, _TenantServing] = {}
        for spec in specs:
            world = TenantWorld(spec)
            graph = build_walking_graph(world.plan)
            anchor_index = build_anchor_index(graph, world.config.anchor_spacing)
            self._serving[spec.tenant_id] = _TenantServing(
                world=world,
                graph=graph,
                anchor_index=anchor_index,
                sessions=SessionManager(
                    world.plan,
                    graph,
                    anchor_index,
                    report_threshold=report_threshold,
                    min_change=min_change,
                ),
                snapshot=ServiceSnapshot(second=-1, table=AnchorObjectTable()),
            )
        self.handles = make_worker_handles(
            specs, num_partitions, transport, queue_depth, shed_policy
        )
        # One reentrant lock guards serving state and the pending queue;
        # HTTP handler threads read under it while the ingest loop
        # publishes under it.
        self._lock = threading.RLock()
        self._pending: Deque[_PendingTick] = deque()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def submit_tick(self, tenant_id: str, batch: ReadingBatch) -> None:
        """Fan one tenant-second out to every live partition."""
        self._tenant(tenant_id)  # validate
        split: Dict[int, List[dict]] = {
            handle.index: [] for handle in self.handles  # type: ignore[attr-defined]
        }
        for reading in batch.readings:
            partition = self.ring.partition_of(tenant_id, reading.tag_id)
            split[partition].append(
                {
                    "time": reading.time,
                    "tag_id": reading.tag_id,
                    "reader_id": reading.reader_id,
                }
            )
        entry = _PendingTick(tenant_id=tenant_id, second=batch.second)
        with self._lock:
            self._pending.append(entry)
        for handle in self.handles:
            if not handle.alive():  # type: ignore[attr-defined]
                continue
            message = {
                "op": "tick",
                "tenant": tenant_id,
                "second": batch.second,
                "readings": split[handle.index],  # type: ignore[attr-defined]
            }
            shed = handle.submit_tick(message)  # type: ignore[attr-defined]
            own_shed = False
            for shed_tenant, shed_second in shed:
                if shed_tenant == tenant_id and shed_second == batch.second:
                    own_shed = True
                self._record_shed(shed_tenant, shed_second, handle.index)  # type: ignore[attr-defined]
            if not own_shed:
                with self._lock:
                    entry.parts.append(handle.index)  # type: ignore[attr-defined]
        if obs.enabled():
            obs.add(
                "gateway.readings",
                len(batch.readings),
                labels={"tenant": tenant_id},
            )
            obs.add("gateway.subticks", len(entry.parts), labels={"tenant": tenant_id})

    def _record_shed(self, tenant_id: str, second: int, partition: int) -> None:
        """Un-expect a shed sub-tick so fan-in never waits for it."""
        with self._lock:
            for entry in self._pending:
                if (
                    entry.tenant_id == tenant_id
                    and entry.second == second
                    and partition in entry.parts
                ):
                    entry.parts.remove(partition)
                    break
            serving = self._serving.get(tenant_id)
            if serving is not None:
                serving.shed_subticks += 1
        obs.add(
            "gateway.shed_subticks",
            labels={"tenant": tenant_id, "partition": partition},
        )

    def collect_tick(
        self, timeout: Optional[float] = 30.0
    ) -> Tuple[str, int, List[ResultDelta]]:
        """Barrier on the oldest outstanding tick; publish its merge.

        Returns ``(tenant_id, second, session deltas)``. Partitions that
        died since submit simply stop contributing — the tick completes
        as partial and health turns ``degraded``.
        """
        with self._lock:
            if not self._pending:
                raise GatewayError("no outstanding tick to collect")
            entry = self._pending.popleft()
        replies: Dict[int, dict] = {}
        missing: List[int] = []
        for index in list(entry.parts):
            reply = self.handles[index].next_snapshot(timeout=timeout)  # type: ignore[attr-defined]
            if reply is None:
                missing.append(index)
                continue
            if (
                reply.get("tenant") != entry.tenant_id
                or reply.get("second") != entry.second
            ):
                raise GatewayProtocolError(
                    f"partition {index} replied for "
                    f"({reply.get('tenant')!r}, {reply.get('second')!r}) "
                    f"while collecting ({entry.tenant_id!r}, {entry.second})"
                )
            replies[index] = reply
        merged = AnchorObjectTable()
        candidates: set = set()
        for index in sorted(replies):
            reply = replies[index]
            entries = reply["entries"]
            for object_id in sorted(entries):
                merged.set_distribution(object_id, entries[object_id])
            candidates.update(reply["candidates"])
        snapshot = ServiceSnapshot(
            second=entry.second, table=merged, candidates=frozenset(candidates)
        )
        with self._lock:
            serving = self._serving[entry.tenant_id]
            serving.snapshot = snapshot
            serving.ticks += 1
            serving.last_second = entry.second
            if missing:
                serving.partial_ticks += 1
            deltas = serving.sessions.publish(entry.second, merged)
            if serving.analytics is not None:
                serving.analytics.observe_snapshot(snapshot)
        if obs.enabled():
            labels = {"tenant": entry.tenant_id}
            obs.add("gateway.ticks", labels=labels)
            if missing:
                obs.add("gateway.partial_ticks", labels=labels)
            obs.gauge_set(
                "gateway.tracked_objects", len(merged.objects()), labels=labels
            )
        return entry.tenant_id, entry.second, deltas

    def process_batch(
        self, tenant_id: str, batch: ReadingBatch
    ) -> List[ResultDelta]:
        """Submit + collect one tenant-second (the unpipelined path)."""
        self.submit_tick(tenant_id, batch)
        _, _, deltas = self.collect_tick()
        return deltas

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # read path (served from merged snapshots at the gateway)
    # ------------------------------------------------------------------
    def _tenant(self, tenant_id: str) -> _TenantServing:
        serving = self._serving.get(tenant_id)
        if serving is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        return serving

    def tenant_ids(self) -> List[str]:
        return list(self._serving)

    def latest_snapshot(self, tenant_id: str) -> ServiceSnapshot:
        with self._lock:
            return self._tenant(tenant_id).snapshot

    def query_range(
        self, tenant_id: str, window: Rect, query_id: str = "gateway-range"
    ) -> RangeResult:
        serving = self._tenant(tenant_id)
        with self._lock:
            snapshot = serving.snapshot
        obs.add("gateway.queries", labels={"tenant": tenant_id, "query": "range"})
        return evaluate_range_query(
            RangeQuery(query_id, window),
            serving.world.plan,
            serving.anchor_index,
            snapshot.table,
        )

    def query_knn(
        self, tenant_id: str, point: Point, k: int, query_id: str = "gateway-knn"
    ) -> KNNResult:
        serving = self._tenant(tenant_id)
        with self._lock:
            snapshot = serving.snapshot
        obs.add("gateway.queries", labels={"tenant": tenant_id, "query": "knn"})
        return evaluate_knn_query(
            KNNQuery(query_id, point, k),
            serving.graph,
            serving.anchor_index,
            snapshot.table,
        )

    # -- standing sessions ---------------------------------------------
    def subscribe_range(
        self, tenant_id: str, window: Rect, session_id: Optional[str] = None
    ) -> str:
        with self._lock:
            return self._tenant(tenant_id).sessions.subscribe_range(
                window, session_id=session_id
            )

    def subscribe_knn(
        self,
        tenant_id: str,
        point: Point,
        k: int,
        session_id: Optional[str] = None,
    ) -> str:
        with self._lock:
            return self._tenant(tenant_id).sessions.subscribe_knn(
                point, k, session_id=session_id
            )

    def unsubscribe(self, tenant_id: str, session_id: str) -> bool:
        with self._lock:
            return self._tenant(tenant_id).sessions.unsubscribe(session_id)

    def session_result(self, tenant_id: str, session_id: str) -> Dict[str, float]:
        with self._lock:
            return self._tenant(tenant_id).sessions.current_result(session_id)

    def sessions_info(self, tenant_id: str) -> List[Dict[str, object]]:
        with self._lock:
            subs = self._tenant(tenant_id).sessions.subscriptions()
            return [
                {
                    "session_id": sub.session_id,
                    "kind": sub.kind,
                    "deltas_delivered": sub.deltas_delivered,
                    "description": sub.describe(),
                }
                for sub in subs
            ]

    # -- analytics ------------------------------------------------------
    def enable_analytics(self, tenant_id: Optional[str] = None) -> None:
        """Attach analytics engines (all tenants, or one)."""
        with self._lock:
            targets = [tenant_id] if tenant_id is not None else self.tenant_ids()
            for tid in targets:
                serving = self._tenant(tid)
                if serving.analytics is None:
                    serving.analytics = AnalyticsEngine(
                        serving.world.plan, serving.anchor_index
                    )

    def analytics_summary(self, tenant_id: str) -> Dict[str, object]:
        with self._lock:
            serving = self._tenant(tenant_id)
            if serving.analytics is None:
                raise GatewayError(
                    f"analytics is not enabled for tenant {tenant_id!r}; "
                    "start the gateway with analytics on"
                )
            return serving.analytics.summary()

    # ------------------------------------------------------------------
    # health / checkpoint support
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """The deployment health document (the ``/healthz`` body)."""
        workers = []
        dead = 0
        for handle in self.handles:
            alive = handle.alive()  # type: ignore[attr-defined]
            if not alive:
                dead += 1
            workers.append(
                {
                    "partition": handle.index,  # type: ignore[attr-defined]
                    "alive": alive,
                    "transport": handle.transport,  # type: ignore[attr-defined]
                }
            )
        with self._lock:
            tenants = {
                tenant_id: {
                    "ticks": serving.ticks,
                    "last_second": serving.last_second,
                    "partial_ticks": serving.partial_ticks,
                    "shed_subticks": serving.shed_subticks,
                    "open_sessions": len(serving.sessions),
                    "analytics": serving.analytics is not None,
                }
                for tenant_id, serving in self._serving.items()
            }
            pending = len(self._pending)
        degraded = dead > 0 or any(t["partial_ticks"] for t in tenants.values())
        return {
            "status": "degraded" if degraded else "ok",
            "partitions": self.num_partitions,
            "dead_partitions": dead,
            "pending_ticks": pending,
            "workers": workers,
            "tenants": tenants,
        }

    def ready(self) -> bool:
        """Every tenant has published at least one snapshot."""
        with self._lock:
            return all(serving.ticks > 0 for serving in self._serving.values())

    def partition_states(self) -> Dict[int, Dict[str, dict]]:
        """Every live partition's per-tenant service state (for checkpoints).

        Refuses while ticks are outstanding (worker state would run
        ahead of the gateway's session/analytics state) or while any
        partition is dead (its slice of the world would be silently
        dropped from the checkpoint).
        """
        with self._lock:
            if self._pending:
                raise GatewayError(
                    "collect all outstanding ticks before checkpointing"
                )
        states: Dict[int, Dict[str, dict]] = {}
        for handle in self.handles:
            if not handle.alive():  # type: ignore[attr-defined]
                raise GatewayError(
                    f"cannot checkpoint: partition {handle.index} is dead"  # type: ignore[attr-defined]
                )
            reply = handle.call({"op": "state"}, timeout=60.0)  # type: ignore[attr-defined]
            states[handle.index] = reply["tenants"]  # type: ignore[attr-defined]
        return states

    def state_dict(self) -> dict:
        """The gateway-level manifest state (ring, tenants, serving)."""
        with self._lock:
            return {
                "partitions": self.num_partitions,
                "vnodes": self.ring.vnodes,
                "tenants": [spec.to_dict() for spec in self.tenants.values()],
                "serving": {
                    tenant_id: {
                        "ticks": serving.ticks,
                        "last_second": serving.last_second,
                        "partial_ticks": serving.partial_ticks,
                        "shed_subticks": serving.shed_subticks,
                        "sessions": serving.sessions.state_dict(),
                        "analytics": (
                            serving.analytics.state_dict()
                            if serving.analytics is not None
                            else None
                        ),
                    }
                    for tenant_id, serving in self._serving.items()
                },
            }

    def restore_serving(self, state: Dict[str, dict]) -> None:
        """Restore gateway-side per-tenant state from a manifest."""
        with self._lock:
            for tenant_id, record in state.items():
                serving = self._tenant(tenant_id)
                serving.ticks = int(record["ticks"])
                last = record["last_second"]
                serving.last_second = None if last is None else int(last)
                serving.partial_ticks = int(record.get("partial_ticks", 0))
                serving.shed_subticks = int(record.get("shed_subticks", 0))
                serving.sessions.restore_state(record["sessions"])
                analytics_state = record.get("analytics")
                if analytics_state is not None:
                    self.enable_analytics(tenant_id)
                    analytics = serving.analytics
                    assert analytics is not None
                    analytics.restore_state(analytics_state)

    def restore_partitions(self, slices: Dict[int, Dict[str, dict]]) -> None:
        """Push checkpoint slices into the workers (one call each)."""
        for handle in self.handles:
            payload = slices.get(handle.index)  # type: ignore[attr-defined]
            if payload is None:
                continue
            try:
                handle.call({"op": "restore", "tenants": payload}, timeout=60.0)  # type: ignore[attr-defined]
            except GatewayWorkerError as exc:
                raise GatewayError(
                    f"restore failed on partition {handle.index}: {exc}"  # type: ignore[attr-defined]
                ) from exc

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for handle in self.handles:
            handle.close()  # type: ignore[attr-defined]

    def __enter__(self) -> "GatewayCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
