"""Worker transports: same-process inline and forked subprocess.

Both transports speak the :mod:`repro.gateway.worker` protocol and
present the same handle surface to the coordinator:

* :meth:`submit_tick` — enqueue one tenant-second for this partition.
  Bounded: with the default ``"block"`` policy the caller waits for
  queue space (lossless backpressure, fully deterministic); with
  ``"shed"`` the *oldest queued* tick is dropped instead and returned
  to the caller so the fan-in barrier can stop waiting for it.
* :meth:`next_snapshot` — the next ``op: snapshot`` reply, in submit
  order (FIFO), or ``None`` once the worker is dead.
* :meth:`call` — a control round-trip (``state``/``restore``/``ping``/
  ``stop``); control messages are never shed.
* :meth:`alive` / :meth:`kill` — liveness probe and hard kill (the
  degraded-mode test hook).

:class:`InlineWorkerHandle` runs the worker core synchronously in the
gateway process — zero concurrency, bit-identical to the process
transport, and what the determinism tests and benches use.
:class:`ProcessWorkerHandle` forks a child and pumps the pipe from two
daemon threads (sender drains the bounded queue, receiver buffers
replies). A dead child (EOF/broken pipe/kill) flips the handle dead and
wakes every waiter; it never raises into the tick path — the
coordinator degrades instead.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.gateway.tenants import TenantSpec
from repro.gateway.worker import PartitionWorkerCore, worker_main

#: (tenant_id, second) of a tick that was load-shed before processing.
ShedTick = Tuple[str, int]

SHED_POLICIES = ("block", "shed")
DEFAULT_QUEUE_DEPTH = 64


class GatewayWorkerError(RuntimeError):
    """A worker failed a control round-trip (died or replied ``error``)."""


class InlineWorkerHandle:
    """Synchronous in-process worker (determinism baseline, tests, bench)."""

    transport = "inline"

    def __init__(
        self,
        index: int,
        specs: Sequence[TenantSpec],
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        shed_policy: str = "block",
        observability: bool = False,
    ) -> None:
        self.index = index
        # Inline cores share the gateway's process registry, so the
        # core must not claim private-registry attribution.
        self._core = PartitionWorkerCore(
            index, specs, observability=observability, private_registry=False
        )
        self._replies: Deque[dict] = deque()
        self._dead = False

    def start_io(self) -> None:
        """No IO threads to start inline."""

    def pending_depth(self) -> int:
        """Inline ticks run synchronously; nothing ever queues."""
        return 0

    def submit_tick(self, message: dict) -> List[ShedTick]:
        if self._dead:
            return [(str(message["tenant"]), int(message["second"]))]
        self._replies.append(self._core.handle(message))
        return []

    def next_snapshot(self, timeout: Optional[float] = None) -> Optional[dict]:
        while self._replies:
            reply = self._replies.popleft()
            if reply.get("op") == "snapshot":
                return reply
        return None

    def call(self, message: dict, timeout: Optional[float] = None) -> dict:
        if self._dead:
            raise GatewayWorkerError(f"partition {self.index} worker is dead")
        reply = self._core.handle(message)
        if reply.get("op") == "error":
            raise GatewayWorkerError(str(reply.get("error")))
        return reply

    def alive(self) -> bool:
        return not self._dead

    def kill(self) -> None:
        """Simulate a worker crash (drops buffered replies too)."""
        self._dead = True
        self._replies.clear()

    def close(self) -> None:
        self._dead = True
        self._core.close()


class ProcessWorkerHandle:
    """A forked worker child plus the sender/receiver pump threads.

    Construction only forks the child; :meth:`start_io` starts the pump
    threads. The split matters: the coordinator forks *all* partitions
    before any thread exists, so no child inherits a running thread's
    half-held state.
    """

    transport = "process"

    def __init__(
        self,
        index: int,
        specs: Sequence[TenantSpec],
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        shed_policy: str = "block",
        observability: bool = False,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, got {shed_policy!r}"
            )
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "transport='process' needs the fork start method; "
                "use transport='inline' on this platform"
            ) from None
        self.index = index
        self.queue_depth = queue_depth
        self.shed_policy = shed_policy
        parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=worker_main,
            args=(
                child_conn,
                index,
                [spec.to_dict() for spec in specs],
                bool(observability),
            ),
            name=f"repro-gateway-worker-{index}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        self._pending: Deque[dict] = deque()
        self._send_cv = threading.Condition()
        self._replies: Deque[dict] = deque()
        self._recv_cv = threading.Condition()
        self._dead = False
        self._closed = False
        self._sender: Optional[threading.Thread] = None
        self._receiver: Optional[threading.Thread] = None

    def start_io(self) -> None:
        if self._sender is not None:
            return
        self._sender = threading.Thread(
            target=self._send_loop,
            name=f"repro-gateway-send-{self.index}",
            daemon=True,
        )
        self._receiver = threading.Thread(
            target=self._recv_loop,
            name=f"repro-gateway-recv-{self.index}",
            daemon=True,
        )
        self._sender.start()
        self._receiver.start()

    # -- pump threads --------------------------------------------------
    def _send_loop(self) -> None:
        while True:
            with self._send_cv:
                while not self._pending and not self._closed and not self._dead:
                    self._send_cv.wait()
                if self._dead:
                    return
                if not self._pending:
                    return  # closed and drained
                message = self._pending.popleft()
                self._send_cv.notify_all()
            try:
                self._conn.send(message)
            except (BrokenPipeError, OSError, ValueError):
                self._mark_dead()
                return

    def _recv_loop(self) -> None:
        while True:
            try:
                reply = self._conn.recv()
            except (EOFError, OSError):
                self._mark_dead()
                return
            with self._recv_cv:
                self._replies.append(reply)
                self._recv_cv.notify_all()

    def _mark_dead(self) -> None:
        with self._send_cv:
            self._dead = True
            self._send_cv.notify_all()
        with self._recv_cv:
            self._recv_cv.notify_all()

    # -- gateway-facing surface ----------------------------------------
    def pending_depth(self) -> int:
        """How many messages are queued toward the child right now."""
        with self._send_cv:
            return len(self._pending)

    def submit_tick(self, message: dict) -> List[ShedTick]:
        shed: List[ShedTick] = []
        with self._send_cv:
            if self._dead:
                return [(str(message["tenant"]), int(message["second"]))]
            if self.shed_policy == "block":
                while len(self._pending) >= self.queue_depth and not self._dead:
                    self._send_cv.wait(0.05)
                if self._dead:
                    return [(str(message["tenant"]), int(message["second"]))]
            else:
                while len(self._pending) >= self.queue_depth:
                    dropped = self._pending.popleft()
                    shed.append((str(dropped["tenant"]), int(dropped["second"])))
            self._pending.append(message)
            self._send_cv.notify_all()
        return shed

    def next_snapshot(self, timeout: Optional[float] = None) -> Optional[dict]:
        deadline = None if timeout is None else _monotonic() + timeout
        with self._recv_cv:
            while True:
                for position, reply in enumerate(self._replies):
                    op = reply.get("op")
                    if op == "snapshot":
                        del self._replies[position]
                        return reply
                    if op == "error":
                        del self._replies[position]
                        raise GatewayWorkerError(
                            f"partition {self.index}: {reply.get('error')}"
                        )
                if self._dead:
                    return None
                remaining = None if deadline is None else deadline - _monotonic()
                if remaining is not None and remaining <= 0:
                    raise GatewayWorkerError(
                        f"partition {self.index}: timed out waiting for a snapshot"
                    )
                self._recv_cv.wait(0.1 if remaining is None else min(remaining, 0.1))

    def call(self, message: dict, timeout: Optional[float] = None) -> dict:
        # Control messages bypass the shed policy (a dropped restore or
        # state op would silently corrupt a checkpoint) but keep FIFO
        # order behind any queued ticks.
        with self._send_cv:
            if self._dead:
                raise GatewayWorkerError(f"partition {self.index} worker is dead")
            self._pending.append(message)
            self._send_cv.notify_all()
        deadline = None if timeout is None else _monotonic() + timeout
        with self._recv_cv:
            while True:
                for position, reply in enumerate(self._replies):
                    op = reply.get("op")
                    if op == "snapshot":
                        continue  # leave tick replies for next_snapshot
                    del self._replies[position]
                    if op == "error":
                        raise GatewayWorkerError(
                            f"partition {self.index}: {reply.get('error')}"
                        )
                    return reply
                if self._dead:
                    raise GatewayWorkerError(
                        f"partition {self.index} worker died mid-call"
                    )
                remaining = None if deadline is None else deadline - _monotonic()
                if remaining is not None and remaining <= 0:
                    raise GatewayWorkerError(
                        f"partition {self.index}: control call timed out"
                    )
                self._recv_cv.wait(0.1 if remaining is None else min(remaining, 0.1))

    def alive(self) -> bool:
        return not self._dead and self._process.is_alive()

    def kill(self) -> None:
        """Hard-kill the child (SIGKILL); used by failure drills."""
        self._process.kill()
        self._process.join(timeout=5)
        self._mark_dead()

    def close(self) -> None:
        """Graceful shutdown: stop op, drain, reap the child."""
        with self._send_cv:
            if not self._dead and not self._closed:
                self._pending.append({"op": "stop"})
            self._closed = True
            self._send_cv.notify_all()
        if self._sender is not None:
            self._sender.join(timeout=5)
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - stuck child
            self._process.terminate()
            self._process.join(timeout=5)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._mark_dead()
        if self._receiver is not None:
            self._receiver.join(timeout=5)


def _monotonic() -> float:
    import time

    return time.monotonic()


def make_worker_handles(
    specs: Sequence[TenantSpec],
    num_partitions: int,
    transport: str = "process",
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    shed_policy: str = "block",
    observability: bool = False,
) -> List[object]:
    """Build all partitions' handles (fork first, start IO threads after)."""
    if transport == "inline":
        return [
            InlineWorkerHandle(
                index, specs, queue_depth, shed_policy, observability
            )
            for index in range(num_partitions)
        ]
    if transport != "process":
        raise ValueError(
            f"transport must be 'inline' or 'process', got {transport!r}"
        )
    handles = [
        ProcessWorkerHandle(
            index, specs, queue_depth, shed_policy, observability
        )
        for index in range(num_partitions)
    ]
    for handle in handles:
        handle.start_io()
    return handles
