"""Anchor-point-to-object index (the paper's ``APtoObjHT`` hash table)."""

from repro.index.hashtable import AnchorObjectTable

__all__ = ["AnchorObjectTable"]
