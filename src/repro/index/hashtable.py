"""The ``APtoObjHT`` hash table (paper Section 4.2).

Maps each anchor point to the list of objects possibly located there with
their probabilities, e.g.::

    (8.5, 6.2) -> {o1: 0.14, o3: 0.03, o7: 0.37}

The reproduction keys entries by anchor id rather than raw coordinates
(anchor ids are bijective with coordinates via the
:class:`~repro.graph.AnchorIndex`), and additionally maintains the reverse
object -> distribution map that query evaluation and metrics need.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple


class AnchorObjectTable:
    """Bidirectional object/anchor probability table.

    Probabilities for one object are a distribution over anchor points
    (summing to 1 when the object's filter ran; callers may store partial
    mass if they choose to truncate).
    """

    def __init__(self) -> None:
        self._by_anchor: Dict[int, Dict[str, float]] = {}
        self._by_object: Dict[str, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def set_distribution(self, object_id: str, distribution: Mapping[int, float]) -> None:
        """Replace an object's anchor distribution.

        Zero or negative masses are dropped; an empty distribution removes
        the object entirely.
        """
        self.remove_object(object_id)
        cleaned = {ap: p for ap, p in distribution.items() if p > 0.0}
        if not cleaned:
            return
        self._by_object[object_id] = cleaned
        for ap_id, prob in cleaned.items():
            self._by_anchor.setdefault(ap_id, {})[object_id] = prob

    def remove_object(self, object_id: str) -> None:
        """Remove all entries of an object (no-op if absent)."""
        old = self._by_object.pop(object_id, None)
        if old is None:
            return
        for ap_id in old:
            bucket = self._by_anchor.get(ap_id)
            if bucket is not None:
                bucket.pop(object_id, None)
                if not bucket:
                    del self._by_anchor[ap_id]

    def clear(self) -> None:
        """Drop every entry."""
        self._by_anchor.clear()
        self._by_object.clear()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def at(self, ap_id: int) -> Dict[str, float]:
        """Objects (with probabilities) indexed at an anchor point."""
        return dict(self._by_anchor.get(ap_id, {}))

    def distribution_of(self, object_id: str) -> Dict[int, float]:
        """An object's probability distribution over anchor points."""
        return dict(self._by_object.get(object_id, {}))

    def objects(self) -> List[str]:
        """Ids of all objects present in the table."""
        return list(self._by_object.keys())

    def anchors(self) -> List[int]:
        """Ids of all anchor points that index at least one object."""
        return list(self._by_anchor.keys())

    def has_object(self, object_id: str) -> bool:
        """True if the object has any probability mass stored."""
        return object_id in self._by_object

    def total_probability(self, object_id: str) -> float:
        """Sum of an object's stored anchor masses (1.0 when complete)."""
        return sum(self._by_object.get(object_id, {}).values())

    def probability_at(self, object_id: str, ap_id: int) -> float:
        """One object's probability at one anchor (0.0 when absent)."""
        return self._by_object.get(object_id, {}).get(ap_id, 0.0)

    def sum_over_anchors(self, object_id: str, ap_ids: Iterable[int]) -> float:
        """Sum an object's probability over a set of anchors."""
        dist = self._by_object.get(object_id, {})
        return sum(dist.get(ap_id, 0.0) for ap_id in ap_ids)

    def items_at(self, ap_id: int) -> List[Tuple[str, float]]:
        """``(object_id, probability)`` pairs at an anchor point."""
        return list(self._by_anchor.get(ap_id, {}).items())

    def __len__(self) -> int:
        return len(self._by_object)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnchorObjectTable(objects={len(self._by_object)}, "
            f"anchors={len(self._by_anchor)})"
        )
