"""The epoch tick loop.

Pulls reading batches off the ingest queue and drives one service tick
per batch: collector ingest → sharded filter step → snapshot publish →
session delta fan-out. Wall-clock pacing is decoupled from the pipeline
through an injectable clock, so tests (and full-speed replays) run the
identical code path with no real sleeping.
"""

from __future__ import annotations

import time
from typing import Optional

import repro.obs as obs
from repro.service.ingest import BoundedQueue


class SystemClock:
    """Real monotonic time (production pacing)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """Deterministic clock for tests: ``sleep`` just advances ``now``."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: list = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.sleeps.append(seconds)
            self._now += seconds

    def advance(self, seconds: float) -> None:
        self._now += seconds


class EpochScheduler:
    """Drives a :class:`~repro.service.tracking.TrackingService` from a queue.

    ``tick_interval`` is the target wall-clock seconds per tick (0 means
    run flat out — the replay/benchmark mode). ``checkpoint_path`` plus
    ``checkpoint_interval`` N write a warm-restart checkpoint every N
    ticks (and a final one when the stream ends).
    """

    def __init__(
        self,
        service,
        queue: BoundedQueue,
        tick_interval: float = 0.0,
        clock=None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: int = 0,
    ):
        if tick_interval < 0:
            raise ValueError("tick_interval must be non-negative")
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        self.service = service
        self.queue = queue
        self.tick_interval = tick_interval
        self.clock = clock if clock is not None else SystemClock()
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.ticks_run = 0
        self.checkpoints_written = 0

    def run(self, max_ticks: Optional[int] = None) -> int:
        """Consume batches until the queue closes (or ``max_ticks``).

        Returns the number of ticks processed by this call.
        """
        from repro.service.checkpoint import save_checkpoint

        processed = 0
        while max_ticks is None or processed < max_ticks:
            batch = self.queue.get()
            if batch is None:
                break
            started = self.clock.now()
            self.service.process_batch(batch)
            elapsed = self.clock.now() - started
            obs.observe("service.tick_latency", elapsed)
            obs.add("service.ticks")
            processed += 1
            self.ticks_run += 1
            if (
                self.checkpoint_path is not None
                and self.checkpoint_interval > 0
                and self.ticks_run % self.checkpoint_interval == 0
            ):
                save_checkpoint(self.service, self.checkpoint_path)
                self.checkpoints_written += 1
            if self.tick_interval > 0:
                self.clock.sleep(self.tick_interval - elapsed)
        if self.checkpoint_path is not None and processed:
            save_checkpoint(self.service, self.checkpoint_path)
            self.checkpoints_written += 1
        return processed
