"""The epoch tick loop.

Pulls reading batches off the ingest queue and drives one service tick
per batch: collector ingest → sharded filter step → snapshot publish →
session delta fan-out. Wall-clock pacing is decoupled from the pipeline
through an injectable clock, so tests (and full-speed replays) run the
identical code path with no real sleeping.

The scheduler is also the home of the service's operational vitals: it
timestamps every tick and checkpoint on its injectable clock, feeds the
optional per-epoch event log (:mod:`repro.obs.events`), and assembles
the ``/healthz`` document (epoch lag, queue depth, last-checkpoint age,
shard liveness) served by ``repro serve --metrics-port``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol

import repro.obs as obs
from repro.service.ingest import BoundedQueue

if TYPE_CHECKING:
    from repro.obs.alerts import AlertEngine
    from repro.obs.events import EpochEventRecorder
    from repro.service.tracking import TrackingService


class Clock(Protocol):
    """What the scheduler needs from a time source: read it, wait on it."""

    def now(self) -> float: ...

    def sleep(self, seconds: float) -> None: ...


class SystemClock:
    """Real monotonic time (production pacing)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """Deterministic clock for tests: ``sleep`` just advances ``now``."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.sleeps.append(seconds)
            self._now += seconds

    def advance(self, seconds: float) -> None:
        self._now += seconds


class EpochScheduler:
    """Drives a :class:`~repro.service.tracking.TrackingService` from a queue.

    ``tick_interval`` is the target wall-clock seconds per tick (0 means
    run flat out — the replay/benchmark mode). ``checkpoint_path`` plus
    ``checkpoint_interval`` N write a warm-restart checkpoint every N
    ticks (and a final one when the stream ends). ``event_recorder`` (an
    :class:`~repro.obs.events.EpochEventRecorder`) gets one
    ``record_epoch`` call per processed batch; ``alert_engine`` (an
    :class:`~repro.obs.alerts.AlertEngine`) receives each epoch record
    for online drift detection (requires an event recorder).
    """

    def __init__(
        self,
        service: TrackingService,
        queue: BoundedQueue,
        tick_interval: float = 0.0,
        clock: Optional[Clock] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: int = 0,
        event_recorder: Optional[EpochEventRecorder] = None,
        alert_engine: Optional[AlertEngine] = None,
    ) -> None:
        if tick_interval < 0:
            raise ValueError("tick_interval must be non-negative")
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        self.service = service
        self.queue = queue
        self.tick_interval = tick_interval
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.event_recorder = event_recorder
        self.alert_engine = alert_engine
        self.ticks_run = 0
        self.checkpoints_written = 0
        self.last_tick_at: Optional[float] = None
        self.last_tick_seconds: Optional[float] = None
        self.last_checkpoint_at: Optional[float] = None

    def run(self, max_ticks: Optional[int] = None) -> int:
        """Consume batches until the queue closes (or ``max_ticks``).

        Returns the number of ticks processed by this call.
        """
        from repro.service.checkpoint import save_checkpoint

        processed = 0
        while max_ticks is None or processed < max_ticks:
            batch = self.queue.get()
            if batch is None:
                break
            started = self.clock.now()
            self.service.process_batch(batch)
            finished = self.clock.now()
            elapsed = finished - started
            obs.observe("service.tick_latency", elapsed)
            obs.add("service.ticks")
            processed += 1
            self.ticks_run += 1
            self.last_tick_at = finished
            self.last_tick_seconds = elapsed
            if self.event_recorder is not None:
                record = self.event_recorder.record_epoch(
                    second=batch.second,
                    tick=self.ticks_run,
                    wall_seconds=elapsed,
                )
                if self.alert_engine is not None:
                    self.alert_engine.observe_epoch(record)
            if (
                self.checkpoint_path is not None
                and self.checkpoint_interval > 0
                and self.ticks_run % self.checkpoint_interval == 0
            ):
                save_checkpoint(self.service, self.checkpoint_path)
                self.checkpoints_written += 1
                self.last_checkpoint_at = self.clock.now()
            if self.tick_interval > 0:
                self.clock.sleep(self.tick_interval - elapsed)
        if self.checkpoint_path is not None and processed:
            save_checkpoint(self.service, self.checkpoint_path)
            self.checkpoints_written += 1
            self.last_checkpoint_at = self.clock.now()
        return processed

    # ------------------------------------------------------------------
    # operational vitals (the /healthz and /readyz providers)
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """Ready once at least one tick has been published."""
        return self.ticks_run > 0

    def health(self, stall_after: Optional[float] = None) -> Dict[str, object]:
        """The ``/healthz`` document: lag, queue, checkpoint age, shards.

        ``stall_after`` (seconds) marks the service degraded when the
        last published tick is older than that; by default a quiet loop
        (e.g. a drained replay) still reports ok.
        """
        now = self.clock.now()
        epoch_lag = None if self.last_tick_at is None else now - self.last_tick_at
        checkpoint_age = (
            None if self.last_checkpoint_at is None
            else now - self.last_checkpoint_at
        )
        status = "ok"
        if stall_after is not None and epoch_lag is not None and epoch_lag > stall_after:
            status = "stalled"
        executor = self.service.executor
        return {
            "status": status,
            "ticks": self.ticks_run,
            "last_second": self.service.last_second,
            "epoch_lag_seconds": epoch_lag,
            "last_tick_seconds": self.last_tick_seconds,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.maxsize,
            "checkpoint_age_seconds": checkpoint_age,
            "checkpoints_written": self.checkpoints_written,
            "tracked_objects": len(self.service.snapshot().table.objects()),
            "standing_queries": len(self.service.sessions),
            "shards": executor.shard_health(),
            "filter_backend": executor.filter_backend.name,
            "active_alerts": (
                len(self.alert_engine.active())
                if self.alert_engine is not None
                else None
            ),
        }
