"""Streaming reading ingest: sources, batching, and backpressure.

A *reading source* yields :class:`ReadingBatch` objects — one second of
raw readings each, in strictly increasing time order. Two sources ship:

* :class:`ReplaySource` — replays a recorded log (CSV or JSONL, via
  :mod:`repro.io.readings_csv`), optionally skipping a prefix so a
  restored service resumes exactly where its checkpoint left off;
* :class:`LiveSimSource` — generates readings live from a
  :class:`~repro.sim.simulator.Simulation`, one tick per batch.

Between the source and the scheduler sits a :class:`BoundedQueue`: a
small blocking queue that applies backpressure to the producer when the
filter pipeline falls behind, instead of buffering unboundedly. A
:class:`SourceFeeder` thread drains a source into the queue so ingest
and filtering overlap.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Iterator, List, Optional, Protocol, Tuple

import repro.obs as obs
from repro.io.readings_csv import PathLike, group_readings_by_second, load_readings
from repro.rfid.readings import RawReading

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


@dataclass(frozen=True)
class ReadingBatch:
    """One epoch of ingest: every raw reading of one wall-clock second."""

    second: int
    readings: Tuple[RawReading, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.readings)


class ReadingSource(Protocol):
    """Anything that yields time-ordered batches (replay, live sim, …)."""

    def batches(self) -> Iterator[ReadingBatch]: ...


class ReplaySource:
    """Replays a recorded reading log second by second.

    ``start_after`` skips all batches up to and including that second —
    the restore path sets it to the checkpoint's last processed second
    so the resumed stream continues seamlessly.
    """

    def __init__(
        self,
        readings: List[RawReading],
        start_after: Optional[int] = None,
        max_seconds: Optional[int] = None,
    ) -> None:
        self._readings = list(readings)
        self.start_after = start_after
        self.max_seconds = max_seconds

    @classmethod
    def from_file(
        cls,
        path: PathLike,
        start_after: Optional[int] = None,
        max_seconds: Optional[int] = None,
    ) -> "ReplaySource":
        """Load a CSV/JSONL log (dispatch on extension) into a source."""
        return cls(load_readings(path), start_after=start_after, max_seconds=max_seconds)

    def batches(self) -> Iterator[ReadingBatch]:
        """Yield one batch per recorded second, in time order."""
        emitted = 0
        for second, batch in group_readings_by_second(self._readings):
            if self.start_after is not None and second <= self.start_after:
                continue
            if self.max_seconds is not None and emitted >= self.max_seconds:
                return
            emitted += 1
            yield ReadingBatch(second=second, readings=tuple(batch))

    def __iter__(self) -> Iterator[ReadingBatch]:
        return self.batches()


class LiveSimSource:
    """Generates batches live from a simulation, one tick at a time.

    Lets ``repro serve --live`` run the full online service without a
    pre-recorded log: each batch is produced on demand by
    :meth:`~repro.sim.simulator.Simulation.step`.
    """

    def __init__(self, simulation: Simulation, seconds: int) -> None:
        if seconds < 1:
            raise ValueError("seconds must be >= 1")
        self.simulation = simulation
        self.seconds = seconds

    def batches(self) -> Iterator[ReadingBatch]:
        """Advance the simulation one second per yielded batch."""
        for _ in range(self.seconds):
            readings = self.simulation.step()
            yield ReadingBatch(
                second=self.simulation.now, readings=tuple(readings)
            )

    def __iter__(self) -> Iterator[ReadingBatch]:
        return self.batches()


class BoundedQueue:
    """A small blocking FIFO with backpressure and close semantics.

    ``put`` blocks while the queue is full (the producer slows to the
    pipeline's pace); ``get`` blocks while it is empty and returns
    ``None`` once the queue is closed *and* drained. Depth is exported
    as the ``service.queue_depth`` gauge, and every producer stall bumps
    ``service.queue_backpressure_waits``.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._items: Deque[ReadingBatch] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def put(self, item: ReadingBatch, timeout: Optional[float] = None) -> bool:
        """Enqueue, blocking while full. Returns False if closed/timed out."""
        with self._not_full:
            if len(self._items) >= self.maxsize:
                obs.add("service.queue_backpressure_waits")
            while len(self._items) >= self.maxsize and not self._closed:
                if not self._not_full.wait(timeout):
                    return False
            if self._closed:
                return False
            self._items.append(item)
            obs.gauge_set("service.queue_depth", len(self._items))
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Optional[ReadingBatch]:
        """Dequeue, blocking while empty. ``None`` means closed and drained."""
        with self._not_empty:
            while not self._items and not self._closed:
                if not self._not_empty.wait(timeout):
                    return None
            if not self._items:
                return None
            item = self._items.popleft()
            obs.gauge_set("service.queue_depth", len(self._items))
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Mark the stream finished; blocked producers/consumers wake up."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class SourceFeeder(threading.Thread):
    """Background thread pumping a reading source into a bounded queue.

    Closes the queue when the source is exhausted (or on error, after
    recording it), so the consuming scheduler terminates cleanly.
    """

    def __init__(self, source: ReadingSource, queue: BoundedQueue) -> None:
        super().__init__(name="repro-ingest-feeder", daemon=True)
        self.source = source
        self.queue = queue
        self.batches_fed = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            for batch in self.source.batches():
                if not self.queue.put(batch):
                    break
                self.batches_fed += 1
                obs.add("service.batches_ingested")
        except BaseException as exc:  # surfaced to the caller via .error
            self.error = exc
        finally:
            self.queue.close()
