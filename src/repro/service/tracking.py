"""The online tracking service: write path, read path, state.

:class:`TrackingService` owns the full online pipeline state — the
event-driven collector, the sharded filter executor, and the standing
query sessions — and exposes:

* the **write path**: :meth:`process_batch`, one epoch tick (ingest one
  second of readings, step every tracked object's particle filter across
  the shard pool, publish the fresh ``APtoObjHT`` snapshot, fan deltas
  out to sessions);
* the **read path**: :meth:`query_range` / :meth:`query_knn` / standing
  sessions — all answered from the last *published* snapshot, a table
  that is never mutated after publication, so reads are lock-free and
  never stall the write path;
* **checkpointing**: :meth:`state_dict` / :meth:`restore_state` capture
  everything needed to resume tick-for-tick after a crash (collector
  retention, cached particle states, sessions, diff baselines).

Unknown tags default to *identity registration* (the tag id is the
object id), matching how a real deployment treats never-seen-before
badges; pass an explicit ``tag_to_object`` mapping to rename.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import repro.obs as obs
from repro import __version__
from repro.analytics.engine import DEFAULT_FLOW_HYSTERESIS, AnalyticsEngine
from repro.analytics.streaming import DEFAULT_DWELL_EDGES
from repro.collector.collector import EventDrivenCollector
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.floorplan.plan import FloorPlan
from repro.floorplan.presets import paper_office_plan
from repro.geometry import Point, Rect
from repro.graph.anchors import build_anchor_index
from repro.graph.walking_graph import build_walking_graph
from repro.index.hashtable import AnchorObjectTable
from repro.queries.continuous import ResultDelta
from repro.queries.pruning import QueryAwareOptimizer
from repro.queries.types import KNNQuery, KNNResult, RangeQuery, RangeResult
from repro.queries.knn_query import evaluate_knn_query
from repro.queries.range_query import evaluate_range_query
from repro.rfid.deployment import deploy_readers_uniform
from repro.rfid.reader import RFIDReader
from repro.filters.registry import BackendSpec
from repro.service.ingest import ReadingBatch
from repro.service.sessions import SessionManager
from repro.service.shards import ShardedFilterExecutor


@dataclass(frozen=True)
class ServiceSnapshot:
    """One published tick: the second it covers and its anchor table.

    Published snapshots are immutable by convention: the write path
    builds a brand-new table every tick and swaps the reference, so any
    reader holding an old snapshot keeps a consistent view for free.
    """

    second: int
    table: AnchorObjectTable
    candidates: frozenset = field(default_factory=frozenset)


class TrackingService:
    """Continuously-updated indoor tracking with standing-query serving."""

    def __init__(
        self,
        config: SimulationConfig = DEFAULT_CONFIG,
        plan: Optional[FloorPlan] = None,
        readers: Optional[Sequence[RFIDReader]] = None,
        tag_to_object: Optional[Dict[str, str]] = None,
        num_shards: int = 1,
        mode: str = "thread",
        use_cache: bool = True,
        use_pruning: bool = False,
        seed: Optional[int] = None,
        report_threshold: float = 0.05,
        min_change: float = 0.10,
        filter_backend: BackendSpec = "particle",
    ) -> None:
        self.config = config
        if config.observability and not obs.enabled():
            obs.enable(fresh=False)
        self.plan = plan if plan is not None else paper_office_plan()
        self.graph = build_walking_graph(self.plan)
        self.anchor_index = build_anchor_index(self.graph, config.anchor_spacing)
        self.readers = (
            list(readers)
            if readers is not None
            else deploy_readers_uniform(
                self.plan, config.num_readers, config.activation_range
            )
        )
        self.seed = seed if seed is not None else config.seed
        self._identity_tags = tag_to_object is None
        self.collector = EventDrivenCollector(tag_to_object or {})
        self.executor = ShardedFilterExecutor(
            self.graph,
            self.anchor_index,
            self.readers,
            config,
            num_shards=num_shards,
            mode=mode,
            use_cache=use_cache,
            seed=self.seed,
            filter_backend=filter_backend,
        )
        self.use_pruning = use_pruning
        self.optimizer = QueryAwareOptimizer(
            self.graph,
            self.anchor_index,
            {r.reader_id: r for r in self.readers},
            config,
        )
        self.sessions = SessionManager(
            self.plan,
            self.graph,
            self.anchor_index,
            report_threshold=report_threshold,
            min_change=min_change,
        )
        self.ticks = 0
        self.last_second: Optional[int] = None
        self._snapshot = ServiceSnapshot(second=-1, table=AnchorObjectTable())
        self.analytics: Optional[AnalyticsEngine] = None

    def enable_analytics(
        self,
        dwell_edges: Sequence[float] = DEFAULT_DWELL_EDGES,
        flow_hysteresis: int = DEFAULT_FLOW_HYSTERESIS,
    ) -> AnalyticsEngine:
        """Attach (or return) the standing analytics session.

        Once attached, every published snapshot folds into the engine's
        incremental aggregates on the write path, and the engine's state
        rides inside this service's checkpoints.
        """
        if self.analytics is None:
            self.analytics = AnalyticsEngine(
                self.plan,
                self.anchor_index,
                dwell_edges=dwell_edges,
                flow_hysteresis=flow_hysteresis,
            )
        return self.analytics

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def process_batch(self, batch: ReadingBatch) -> List[ResultDelta]:
        """One epoch tick; returns the session deltas it produced."""
        with obs.span("service.tick", second=batch.second):
            if self._identity_tags:
                self._register_unknown_tags(batch)
            self.collector.ingest_second(batch.second, batch.readings)
            if self.use_pruning:
                candidates = self.optimizer.candidates(
                    self.collector,
                    batch.second,
                    self.sessions.engine.range_queries,
                    self.sessions.engine.knn_queries,
                )
            else:
                candidates = set(self.collector.observed_objects())
            table = self.executor.build_table(
                sorted(candidates), self.collector, batch.second
            )
            self._snapshot = ServiceSnapshot(
                second=batch.second,
                table=table,
                candidates=frozenset(candidates),
            )
            deltas = self.sessions.publish(batch.second, table)
            if self.analytics is not None:
                self.analytics.observe_snapshot(self._snapshot)
            self.ticks += 1
            self.last_second = batch.second
            if obs.enabled():
                obs.gauge_set("service.tracked_objects", len(table.objects()))
        return deltas

    def _register_unknown_tags(self, batch: ReadingBatch) -> None:
        new_tags = {
            reading.tag_id: reading.tag_id
            for reading in batch.readings
            if not self.collector.knows_tag(reading.tag_id)
        }
        if new_tags:
            self.collector.register_tags(new_tags)

    # ------------------------------------------------------------------
    # read path (all lock-free: served from the published snapshot)
    # ------------------------------------------------------------------
    def snapshot(self) -> ServiceSnapshot:
        """The latest published snapshot (second == -1 before first tick)."""
        return self._snapshot

    def query_range(self, window: Rect, query_id: str = "adhoc-range") -> RangeResult:
        """Ad-hoc range query against the published snapshot (no filtering)."""
        snap = self._snapshot
        obs.add("service.adhoc_queries", labels={"query": "range"})
        return evaluate_range_query(
            RangeQuery(query_id, window), self.plan, self.anchor_index, snap.table
        )

    def query_knn(self, point: Point, k: int, query_id: str = "adhoc-knn") -> KNNResult:
        """Ad-hoc kNN query against the published snapshot (no filtering)."""
        snap = self._snapshot
        obs.add("service.adhoc_queries", labels={"query": "knn"})
        return evaluate_knn_query(
            KNNQuery(query_id, point, k), self.graph, self.anchor_index, snap.table
        )

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything a warm restart needs, as one JSON-safe dict."""
        return {
            "version": __version__,
            "seed": self.seed,
            "ticks": self.ticks,
            "last_second": self.last_second,
            "use_pruning": self.use_pruning,
            "identity_tags": self._identity_tags,
            "config": self.config.to_dict(),
            "filter": {
                "backend": self.executor.filter_backend.name,
                "state_version": self.executor.filter_backend.state_version,
            },
            "collector": self.collector.state_dict(),
            "cache": (
                self.executor.cache.state_dict()
                if self.executor.cache is not None
                else None
            ),
            "sessions": self.sessions.state_dict(),
            "analytics": (
                self.analytics.state_dict()
                if self.analytics is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` output (same world geometry).

        Refuses (with ``CheckpointCompatibilityError``) to load state
        produced by a different filter backend or an incompatible state
        version: decoding another estimator's belief documents would
        silently corrupt tracking.
        """
        from repro.service.checkpoint import CheckpointCompatibilityError

        recorded = state.get(
            "filter", {"backend": "particle", "state_version": 1}
        )
        backend = self.executor.filter_backend
        if recorded["backend"] != backend.name:
            raise CheckpointCompatibilityError(
                f"checkpoint was produced by filter backend "
                f"{recorded['backend']!r}, but this service runs "
                f"{backend.name!r}; restart with --filter "
                f"{recorded['backend']} or re-create the checkpoint"
            )
        if int(recorded["state_version"]) != backend.state_version:
            raise CheckpointCompatibilityError(
                f"checkpoint carries {backend.name!r} states at version "
                f"{recorded['state_version']}, but this build speaks "
                f"version {backend.state_version}; re-create the checkpoint"
            )
        self.seed = int(state["seed"])
        self.executor.seed = self.seed
        self.ticks = int(state["ticks"])
        last = state["last_second"]
        self.last_second = None if last is None else int(last)
        self.use_pruning = bool(state["use_pruning"])
        self._identity_tags = bool(state["identity_tags"])
        self.collector.restore_state(state["collector"])
        if state["cache"] is not None and self.executor.cache is not None:
            self.executor.cache.restore_state(state["cache"])
        self.sessions.restore_state(state["sessions"])
        analytics_state = state.get("analytics")
        if analytics_state is not None:
            # A checkpointed analytics session resumes even if the new
            # process hasn't asked for analytics yet — dropping the
            # aggregates silently would break the bit-exact-resume
            # guarantee.
            self.enable_analytics().restore_state(analytics_state)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release worker pools."""
        self.executor.close()

    def __enter__(self) -> "TrackingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
