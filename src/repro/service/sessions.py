"""Standing-query sessions: subscriptions, snapshot reads, delta fan-out.

A *session* is a standing range or kNN query. Every tick, the service
publishes the freshly-built anchor-point table to the session manager,
which re-evaluates all standing queries against it, diffs the results
through :class:`~repro.queries.continuous.ContinuousQueryMonitor`, and
fans the deltas out to subscriber callbacks.

The key serving property: queries are evaluated against a *published,
never-mutated* table (the write path builds a brand-new table each tick
and swaps it in), so reads never block — and are never blocked by — the
filter pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import repro.obs as obs
from repro.floorplan.plan import FloorPlan
from repro.geometry import Point, Rect
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.index.hashtable import AnchorObjectTable
from repro.queries.continuous import ContinuousQueryMonitor, ResultDelta
from repro.queries.engine import EngineSnapshot
from repro.queries.knn_query import evaluate_knn_query
from repro.queries.range_query import evaluate_range_query
from repro.queries.types import KNNQuery, RangeQuery

DeltaCallback = Callable[[ResultDelta], None]


class SnapshotQueryEngine:
    """Engine-API adapter that evaluates queries against a prebuilt table.

    Exposes the same ``register``/``unregister``/``evaluate`` surface as
    :class:`~repro.queries.engine.IndoorQueryEngine`, but runs **no**
    filters: ``evaluate`` answers every registered query from whatever
    table was last published. This is what lets the unmodified
    :class:`ContinuousQueryMonitor` drive the service's read path.
    """

    def __init__(
        self, plan: FloorPlan, graph: WalkingGraph, anchor_index: AnchorIndex
    ) -> None:
        self.plan = plan
        self.graph = graph
        self.anchor_index = anchor_index
        self.table: AnchorObjectTable = AnchorObjectTable()
        self._range_queries: List[RangeQuery] = []
        self._knn_queries: List[KNNQuery] = []

    # -- registration (engine API parity) -------------------------------
    def register_range_query(self, query: RangeQuery) -> None:
        self._range_queries.append(query)

    def register_knn_query(self, query: KNNQuery) -> None:
        self._knn_queries.append(query)

    def unregister_query(self, query_id: str) -> bool:
        for queries in (self._range_queries, self._knn_queries):
            for index, query in enumerate(queries):
                if query.query_id == query_id:
                    del queries[index]
                    return True
        return False

    def clear_queries(self) -> None:
        self._range_queries.clear()
        self._knn_queries.clear()

    @property
    def range_queries(self) -> List[RangeQuery]:
        return list(self._range_queries)

    @property
    def knn_queries(self) -> List[KNNQuery]:
        return list(self._knn_queries)

    # -- evaluation ------------------------------------------------------
    def evaluate(self, now: int, rng: object = None) -> EngineSnapshot:
        """Answer every registered query from the published table.

        ``rng`` is accepted (and ignored) for monitor compatibility —
        snapshot evaluation is deterministic.
        """
        del rng
        table = self.table
        snapshot = EngineSnapshot(
            second=now, candidates=set(table.objects()), table=table
        )
        for query in self._range_queries:
            snapshot.range_results[query.query_id] = evaluate_range_query(
                query, self.plan, self.anchor_index, table
            )
        for query in self._knn_queries:
            snapshot.knn_results[query.query_id] = evaluate_knn_query(
                query, self.graph, self.anchor_index, table
            )
        return snapshot


@dataclass
class Subscription:
    """One standing query and its (optional) delta callback."""

    session_id: str
    kind: str  # "range" | "knn"
    window: Optional[Rect] = None
    point: Optional[Point] = None
    k: Optional[int] = None
    callback: Optional[DeltaCallback] = None
    deltas_delivered: int = 0

    def describe(self) -> str:
        """One-line human-readable form (used by the serve CLI)."""
        if self.kind == "range":
            w = self.window
            assert w is not None
            return (
                f"{self.session_id}: range "
                f"[{w.min_x:.1f},{w.min_y:.1f} - {w.max_x:.1f},{w.max_y:.1f}]"
            )
        p = self.point
        assert p is not None
        return f"{self.session_id}: {self.k}NN at ({p.x:.1f},{p.y:.1f})"


class SessionManager:
    """Registry of standing-query sessions plus their delta pipeline."""

    def __init__(
        self,
        plan: FloorPlan,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        report_threshold: float = 0.05,
        min_change: float = 0.10,
    ) -> None:
        self.engine = SnapshotQueryEngine(plan, graph, anchor_index)
        self.monitor = ContinuousQueryMonitor(
            self.engine,
            report_threshold=report_threshold,
            min_change=min_change,
        )
        self._subscriptions: Dict[str, Subscription] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def _allocate_id(self, session_id: Optional[str], kind: str) -> str:
        if session_id is None:
            session_id = f"session-{kind}-{self._next_id}"
        if session_id in self._subscriptions:
            raise ValueError(f"session id {session_id!r} already subscribed")
        self._next_id += 1
        return session_id

    def subscribe_range(
        self,
        window: Rect,
        callback: Optional[DeltaCallback] = None,
        session_id: Optional[str] = None,
    ) -> str:
        """Open a standing range query; returns its session id."""
        session_id = self._allocate_id(session_id, "range")
        self.monitor.add_range_query(session_id, window)
        self._subscriptions[session_id] = Subscription(
            session_id=session_id, kind="range", window=window, callback=callback
        )
        obs.add("service.sessions_opened")
        return session_id

    def subscribe_knn(
        self,
        point: Point,
        k: int,
        callback: Optional[DeltaCallback] = None,
        session_id: Optional[str] = None,
    ) -> str:
        """Open a standing kNN query; returns its session id."""
        session_id = self._allocate_id(session_id, "knn")
        self.monitor.add_knn_query(session_id, point, k)
        self._subscriptions[session_id] = Subscription(
            session_id=session_id, kind="knn", point=point, k=k, callback=callback
        )
        obs.add("service.sessions_opened")
        return session_id

    def unsubscribe(self, session_id: str) -> bool:
        """Close a session mid-stream; later ticks skip it entirely."""
        subscription = self._subscriptions.pop(session_id, None)
        self.monitor.remove_query(session_id)
        if subscription is not None:
            obs.add("service.sessions_closed")
        return subscription is not None

    def attach_callback(self, session_id: str, callback: DeltaCallback) -> None:
        """(Re)attach a delta callback, e.g. after a checkpoint restore."""
        self._subscriptions[session_id].callback = callback

    def subscriptions(self) -> List[Subscription]:
        """All open subscriptions, in subscription order."""
        return list(self._subscriptions.values())

    def __len__(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def publish(self, second: int, table: AnchorObjectTable) -> List[ResultDelta]:
        """Swap in the tick's table, diff all sessions, fan deltas out."""
        self.engine.table = table
        deltas = self.monitor.tick(second)
        fanned_out = 0
        for delta in deltas:
            subscription = self._subscriptions.get(delta.query_id)
            if subscription is None:
                continue
            if not delta.is_empty:
                subscription.deltas_delivered += 1
                fanned_out += 1
                if subscription.callback is not None:
                    subscription.callback(delta)
        if obs.enabled():
            obs.add("service.deltas_fanned_out", fanned_out)
            obs.gauge_set("service.open_sessions", len(self._subscriptions))
        return deltas

    def current_result(self, session_id: str) -> Dict[str, float]:
        """The last published result of one session."""
        return self.monitor.current_result(session_id)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Sessions and monitor diff state, JSON-safe (callbacks excluded)."""
        sessions: List[Dict[str, object]] = []
        for sub in self._subscriptions.values():
            record: Dict[str, object] = {"session_id": sub.session_id, "kind": sub.kind,
                                         "deltas_delivered": sub.deltas_delivered}
            if sub.kind == "range":
                w = sub.window
                assert w is not None
                record["window"] = [w.min_x, w.min_y, w.max_x, w.max_y]
            else:
                p = sub.point
                assert p is not None
                record["point"] = [p.x, p.y]
                record["k"] = sub.k
            sessions.append(record)
        return {
            "next_id": self._next_id,
            "report_threshold": self.monitor.report_threshold,
            "min_change": self.monitor.min_change,
            "monitor": self.monitor.state_dict(),
            "sessions": sessions,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild sessions and diff state; callbacks must be re-attached."""
        self.engine.clear_queries()
        self._subscriptions.clear()
        self.monitor.report_threshold = float(state["report_threshold"])
        self.monitor.min_change = float(state["min_change"])
        self._next_id = 1
        for record in state["sessions"]:
            session_id = record["session_id"]
            if record["kind"] == "range":
                window = Rect(*record["window"])
                self.subscribe_range(window, session_id=session_id)
            else:
                x, y = record["point"]
                self.subscribe_knn(Point(x, y), int(record["k"]), session_id=session_id)
            self._subscriptions[session_id].deltas_delivered = int(
                record["deltas_delivered"]
            )
        # The monitor's diff baseline must survive the restart, or the
        # first resumed tick would re-report every present object as
        # "entered".
        self.monitor.restore_state(state["monitor"])
        self._next_id = int(state["next_id"])
