"""Sharded per-object filter execution.

Moving objects are partitioned across a worker pool so per-object
particle filter steps run in parallel. The partition is a stable hash of
the object id (:func:`shard_of`), so an object always lands on the same
shard for a given shard count.

Determinism: every filter run draws from a private generator derived
from ``(seed, second, object_id)`` (:func:`repro.rng.child_rng`), never
from a stream shared between objects. Filter output therefore does not
depend on which shard an object landed on, in what order a shard
processed its objects, or how the OS interleaved the workers — a replay
with 1 shard and with 4 shards produces bit-identical tables.

Modes:

* ``"serial"`` — shards run inline, in shard order (debug baseline);
* ``"thread"`` — one task per shard on a thread pool (numpy releases
  the GIL in the hot kernels); shares the particle cache with the
  serial path, so serial and thread results are identical;
* ``"process"`` — one task per shard on a fork-based process pool.
  Workers are cache-less (a parent-side cache cannot be kept coherent
  across address spaces cheaply), so every run is a cold run: still
  deterministic at any shard count, but a different (cache-free) stream
  than thread/serial mode.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.collector.collector import DeviceRun, EventDrivenCollector, ReadingHistory
from repro.config import SimulationConfig
from repro.core.preprocessing import PreprocessingModule
from repro.filters.registry import BackendSpec
from repro.graph.anchors import AnchorIndex
from repro.graph.walking_graph import WalkingGraph
from repro.index.hashtable import AnchorObjectTable
from repro.rfid.reader import RFIDReader
from repro.rng import filter_run_rng

if TYPE_CHECKING:
    import numpy as np

#: What one process-pool task carries: (executor key, second, seed,
#: [(object_id, serialized device runs), ...]).
_ShardPayload = Tuple[int, int, int, List[Tuple[str, List[Dict[str, Any]]]]]
_ShardResult = List[Tuple[str, Dict[int, float]]]

_MODES = ("serial", "thread", "process")

#: Process-mode worker state, inherited by forked workers: maps an
#: executor key to its cache-less preprocessing module. Populated in the
#: parent *before* the pool forks, read-only in the children.
_FORK_REGISTRY: Dict[int, PreprocessingModule] = {}
#: Guards registry writes: executors can be constructed/closed from any
#: thread (forked workers only ever read their inherited copy).
_FORK_LOCK = threading.Lock()
_EXECUTOR_KEYS = itertools.count(1)


def shard_of(object_id: str, num_shards: int) -> int:
    """Stable shard assignment: CRC32 of the id, modulo the shard count."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return zlib.crc32(object_id.encode("utf-8")) % num_shards


def partition_objects(
    objects: Sequence[str], num_shards: int
) -> List[List[str]]:
    """Partition object ids into ``num_shards`` sorted lists."""
    shards: List[List[str]] = [[] for _ in range(num_shards)]
    for object_id in sorted(objects):
        shards[shard_of(object_id, num_shards)].append(object_id)
    return shards


def _run_process_shard(payload: _ShardPayload) -> _ShardResult:
    """Process-pool worker: cold-filter one shard's objects.

    Runs in a forked child; the preprocessing module is found in the
    fork-inherited :data:`_FORK_REGISTRY`. Reading histories travel in
    the payload because the parent's collector keeps evolving after the
    fork.
    """
    key, second, seed, object_states = payload
    pp = _FORK_REGISTRY[key]
    results: _ShardResult = []
    for object_id, runs in object_states:
        history = ReadingHistory(
            object_id=object_id,
            runs=tuple(
                DeviceRun(reader_id=r["reader_id"], seconds=list(r["seconds"]))
                for r in runs
            ),
        )
        rng = filter_run_rng(seed, second, object_id)
        run = pp.backend.run(history, second, rng=rng)
        results.append((object_id, run.posterior()))
    return results


class ShardedFilterExecutor:
    """Runs the per-object filter step of one tick across a shard pool."""

    def __init__(
        self,
        graph: WalkingGraph,
        anchor_index: AnchorIndex,
        readers: Sequence[RFIDReader],
        config: SimulationConfig,
        num_shards: int = 1,
        mode: str = "thread",
        use_cache: bool = True,
        seed: Optional[int] = None,
        resampler: Optional[Callable[..., Any]] = None,
        filter_backend: BackendSpec = "particle",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.num_shards = num_shards
        self.mode = mode
        self.seed = seed if seed is not None else config.seed
        from repro.cache.particle_cache import ParticleCacheManager
        from repro.core.resampling import systematic_resample
        from repro.filters.registry import create_backend

        resampler = resampler if resampler is not None else systematic_resample
        self.filter_backend = create_backend(
            filter_backend, graph, anchor_index, readers, config,
            resampler=resampler,
        )
        self.cache = (
            ParticleCacheManager(
                backend=self.filter_backend.name,
                state_version=self.filter_backend.state_version,
                decoder=self.filter_backend.state_from_dict,
            )
            if (use_cache and mode != "process" and self.filter_backend.cacheable)
            else None
        )
        self.preprocessing = PreprocessingModule(
            graph, anchor_index, readers, config,
            cache=self.cache, resampler=resampler,
            backend=self.filter_backend,
        )
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._key = next(_EXECUTOR_KEYS)
        if mode == "process":
            self._init_process_pool()

    # ------------------------------------------------------------------
    def rng_for(self, second: int, object_id: str) -> "np.random.Generator":
        """The private generator of one object's filter run at one tick."""
        return filter_run_rng(self.seed, second, object_id)

    def build_table(
        self, candidates: Sequence[str], collector: EventDrivenCollector, second: int
    ) -> AnchorObjectTable:
        """Filter every candidate across the shard pool and merge the result.

        Returns a fresh ``APtoObjHT`` table; merge order is shard order,
        and within a shard objects are processed in sorted id order, so
        the merged table is reproducible (and, thanks to per-object RNG
        streams, identical at any shard count).
        """
        shards = partition_objects(candidates, self.num_shards)
        sizes = [len(shard) for shard in shards]
        backend_label = {"backend": self.filter_backend.name}
        if obs.enabled():
            obs.gauge_set("service.shards", self.num_shards)
            for index, size in enumerate(sizes):
                obs.gauge_set(
                    "service.shard_objects", size, labels={"shard": index}
                )
            populated = [s for s in sizes if s]
            if populated:
                mean = sum(populated) / len(populated)
                obs.observe(
                    "service.shard_imbalance",
                    max(populated) / mean if mean else 1.0,
                )
        with obs.timer("service.filter_tick", labels=backend_label):
            if self.mode == "serial" or (self.num_shards == 1 and self.mode == "thread"):
                shard_tables = [
                    self._run_shard(index, shard, collector, second)
                    for index, shard in enumerate(shards)
                ]
            elif self.mode == "thread":
                pool = self._ensure_thread_pool()
                futures = [
                    pool.submit(self._run_shard, index, shard, collector, second)
                    for index, shard in enumerate(shards)
                ]
                shard_tables = [f.result() for f in futures]
            else:
                shard_tables = self._run_process_shards(shards, collector, second)

        merged = AnchorObjectTable()
        for table in shard_tables:
            for object_id in table.objects():
                merged.set_distribution(object_id, table.distribution_of(object_id))
        return merged

    # ------------------------------------------------------------------
    def _run_shard(
        self, index: int, shard: List[str], collector: EventDrivenCollector, second: int
    ) -> AnchorObjectTable:
        """Filter one shard's objects with per-object RNG streams.

        Timed per shard (the ``service.shard_time{shard=N}`` series) and
        counted per shard and backend — labels only read the shard index
        and never touch the RNG stream, so labeled runs stay bit-identical
        to unlabeled ones.
        """
        with obs.timer("service.shard_time", labels={"shard": index}):
            table = self.preprocessing.process(
                shard,
                collector,
                second,
                rng_factory=lambda object_id: self.rng_for(second, object_id),
            )
        obs.add(
            "service.shard_objects_filtered",
            len(shard),
            labels={"shard": index, "backend": self.filter_backend.name},
        )
        return table

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="repro-shard",
            )
        return self._thread_pool

    def _init_process_pool(self) -> None:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "mode='process' needs the fork start method; "
                "use mode='thread' on this platform"
            ) from None
        # Workers fork lazily on first submit; the registry entry must be
        # in place before that so children inherit it.
        with _FORK_LOCK:
            _FORK_REGISTRY[self._key] = self.preprocessing
        self._process_pool = ProcessPoolExecutor(
            max_workers=self.num_shards, mp_context=context
        )

    def _run_process_shards(
        self, shards: List[List[str]], collector: EventDrivenCollector, second: int
    ) -> List[AnchorObjectTable]:
        pool = self._process_pool
        assert pool is not None
        futures: List[Future[_ShardResult]] = []
        for shard in shards:
            object_states: List[Tuple[str, List[Dict[str, Any]]]] = []
            for object_id in shard:
                history = collector.history(object_id)
                if history.is_empty:
                    continue
                object_states.append(
                    (
                        object_id,
                        [
                            {"reader_id": run.reader_id, "seconds": list(run.seconds)}
                            for run in history.runs
                        ],
                    )
                )
            futures.append(
                pool.submit(
                    _run_process_shard,
                    (self._key, second, self.seed, object_states),
                )
            )
        tables: List[AnchorObjectTable] = []
        for future in futures:
            table = AnchorObjectTable()
            for object_id, distribution in future.result():
                table.set_distribution(object_id, distribution)
            tables.append(table)
        return tables

    # ------------------------------------------------------------------
    def shard_health(self) -> Dict[str, object]:
        """Pool liveness for the ``/healthz`` document."""
        return {
            "num_shards": self.num_shards,
            "mode": self.mode,
            "thread_pool_live": self._thread_pool is not None,
            "process_pool_live": self._process_pool is not None,
            "cache_enabled": self.cache is not None,
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down worker pools (idempotent)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None
        with _FORK_LOCK:
            _FORK_REGISTRY.pop(self._key, None)

    def __enter__(self) -> "ShardedFilterExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
