"""Checkpoint / restore: warm restart for the tracking service.

A checkpoint is one JSON document capturing the full mutable state of a
:class:`~repro.service.tracking.TrackingService` after some tick:

* the collector's retained device runs, generations, and event log,
* every cached particle state, bit-exact (so resumed filter runs replay
  the same seconds from the same particles),
* all standing-query sessions plus the continuous monitor's diff
  baseline (so the first resumed tick reports true deltas, not a replay
  of the whole result set),
* the tick counter, last processed second, and RNG seed.

Because every filter run's randomness is derived from
``(seed, second, object_id)`` — never from an evolving generator — no
generator state needs to be serialized, and
``checkpoint → restore → resume`` is tick-for-tick identical to an
uninterrupted run (asserted in ``tests/test_service_checkpoint.py``).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.config import SimulationConfig

CHECKPOINT_FORMAT = "repro-service-checkpoint"
CHECKPOINT_VERSION = 1


def save_checkpoint(service, path) -> None:
    """Write the service's full state to ``path`` (atomic rename)."""
    document = {
        "format": CHECKPOINT_FORMAT,
        "checkpoint_version": CHECKPOINT_VERSION,
        "state": service.state_dict(),
    }
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    os.replace(tmp_path, path)


def load_checkpoint(path) -> dict:
    """Read and validate a checkpoint; returns the raw state dict."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path}: not a {CHECKPOINT_FORMAT} file")
    version = document.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    return document["state"]


def restore_service(
    state: dict,
    plan=None,
    readers=None,
    num_shards: int = 1,
    mode: str = "thread",
    use_cache: Optional[bool] = None,
):
    """Build a :class:`TrackingService` resumed from a checkpoint state.

    The world geometry (floor plan, deployment) is not serialized — pass
    the same ``plan``/``readers`` the original service ran with (or rely
    on the paper defaults, which are deterministic). Shard count and
    execution mode are free to change across a restart: determinism is
    per-object, so a service checkpointed at 1 shard resumes identically
    at 4.
    """
    from repro.service.tracking import TrackingService

    config = SimulationConfig(**state["config"])
    if use_cache is None:
        use_cache = state["cache"] is not None
    service = TrackingService(
        config=config,
        plan=plan,
        readers=readers,
        tag_to_object=None if state["identity_tags"] else {},
        num_shards=num_shards,
        mode=mode,
        use_cache=use_cache,
        use_pruning=bool(state["use_pruning"]),
        seed=int(state["seed"]),
    )
    service.restore_state(state)
    return service


def restore_from_file(
    path,
    plan=None,
    readers=None,
    num_shards: int = 1,
    mode: str = "thread",
    use_cache: Optional[bool] = None,
):
    """:func:`load_checkpoint` + :func:`restore_service` in one call."""
    return restore_service(
        load_checkpoint(path),
        plan=plan,
        readers=readers,
        num_shards=num_shards,
        mode=mode,
        use_cache=use_cache,
    )
