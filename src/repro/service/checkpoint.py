"""Checkpoint / restore: warm restart for the tracking service.

A checkpoint is one JSON document capturing the full mutable state of a
:class:`~repro.service.tracking.TrackingService` after some tick:

* the collector's retained device runs, generations, and event log,
* every cached filter state, bit-exact (so resumed filter runs replay
  the same seconds from the same belief), tagged with the producing
  backend's name and state version,
* all standing-query sessions plus the continuous monitor's diff
  baseline (so the first resumed tick reports true deltas, not a replay
  of the whole result set),
* the tick counter, last processed second, and RNG seed.

Because every filter run's randomness is derived from
``(seed, second, object_id)`` — never from an evolving generator — no
generator state needs to be serialized, and
``checkpoint → restore → resume`` is tick-for-tick identical to an
uninterrupted run (asserted in ``tests/test_service_checkpoint.py``).

Version history: version 1 predates pluggable filter backends (its
caches are implicitly particle-filter states); version 2 records the
backend name and state version both at the service level and inside the
cache document. Version-1 files are migrated on load; restoring onto a
service running a *different* backend raises
:class:`CheckpointCompatibilityError` instead of mis-decoding.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.config import SimulationConfig

if TYPE_CHECKING:
    from repro.floorplan.plan import FloorPlan
    from repro.rfid.reader import RFIDReader
    from repro.service.tracking import TrackingService

PathLike = Union[str, "os.PathLike[str]"]

CHECKPOINT_FORMAT = "repro-service-checkpoint"
CHECKPOINT_VERSION = 2


class CheckpointCompatibilityError(ValueError):
    """A checkpoint cannot be restored onto this service configuration."""


def save_checkpoint(service: TrackingService, path: PathLike) -> None:
    """Write the service's full state to ``path`` (atomic rename)."""
    document = {
        "format": CHECKPOINT_FORMAT,
        "checkpoint_version": CHECKPOINT_VERSION,
        "state": service.state_dict(),
    }
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    os.replace(tmp_path, path)


def _migrate_v1(state: dict) -> dict:
    """Lift a version-1 state dict to the version-2 layout.

    Version 1 only ever held particle-filter state: inject the implicit
    backend identity and wrap the flat cache mapping in the tagged
    ``entries`` envelope (renaming each entry's ``particles`` field to
    the generic ``state``).
    """
    state = dict(state)
    state.setdefault("filter", {"backend": "particle", "state_version": 1})
    cache = state.get("cache")
    if cache is not None and "entries" not in cache:
        state["cache"] = {
            "backend": "particle",
            "state_version": 1,
            "entries": {
                object_id: {
                    "state_second": entry["state_second"],
                    "device_generation": entry["device_generation"],
                    "state": entry["particles"],
                }
                for object_id, entry in cache.items()
            },
        }
    return state


def load_checkpoint(path: PathLike) -> dict:
    """Read and validate a checkpoint; returns the raw state dict.

    Version-1 documents (pre-backend) are transparently migrated to the
    current layout.
    """
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path}: not a {CHECKPOINT_FORMAT} file")
    version = document.get("checkpoint_version")
    state = document.get("state")
    if not isinstance(state, dict):
        raise ValueError(f"{path}: checkpoint state is not an object")
    if version == 1:
        return _migrate_v1(state)
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    return state


def checkpoint_backend(state: dict) -> str:
    """The filter backend name a (migrated) checkpoint state was made with."""
    return str(state.get("filter", {}).get("backend", "particle"))


def restore_service(
    state: dict,
    plan: Optional[FloorPlan] = None,
    readers: Optional[Sequence[RFIDReader]] = None,
    num_shards: int = 1,
    mode: str = "thread",
    use_cache: Optional[bool] = None,
    filter_backend: Optional[str] = None,
) -> TrackingService:
    """Build a :class:`TrackingService` resumed from a checkpoint state.

    The world geometry (floor plan, deployment) is not serialized — pass
    the same ``plan``/``readers`` the original service ran with (or rely
    on the paper defaults, which are deterministic). Shard count and
    execution mode are free to change across a restart: determinism is
    per-object, so a service checkpointed at 1 shard resumes identically
    at 4.

    The filter backend is **not** free to change: cached beliefs only
    decode under the backend that produced them. ``filter_backend=None``
    adopts the checkpoint's recorded backend; passing a different name
    raises :class:`CheckpointCompatibilityError` up front with a message
    naming both sides.
    """
    from repro.filters.registry import FACTORY
    from repro.service.tracking import TrackingService

    recorded = checkpoint_backend(state)
    if filter_backend is None:
        filter_backend = recorded
    elif filter_backend != recorded:
        raise CheckpointCompatibilityError(
            f"checkpoint was produced by filter backend {recorded!r} but "
            f"--filter {filter_backend} was requested; restore with "
            f"--filter {recorded} (or omit it) or re-create the checkpoint"
        )
    recorded_version = int(
        state.get("filter", {}).get("state_version", 1)
    )
    current_version = FACTORY.state_version_of(filter_backend)
    if recorded_version != current_version:
        raise CheckpointCompatibilityError(
            f"checkpoint carries {filter_backend!r} states at version "
            f"{recorded_version}, but this build speaks version "
            f"{current_version}; re-create the checkpoint"
        )

    config = SimulationConfig(**state["config"])
    if use_cache is None:
        use_cache = state["cache"] is not None
    service = TrackingService(
        config=config,
        plan=plan,
        readers=readers,
        tag_to_object=None if state["identity_tags"] else {},
        num_shards=num_shards,
        mode=mode,
        use_cache=use_cache,
        use_pruning=bool(state["use_pruning"]),
        seed=int(state["seed"]),
        filter_backend=filter_backend,
    )
    service.restore_state(state)
    return service


def restore_from_file(
    path: PathLike,
    plan: Optional[FloorPlan] = None,
    readers: Optional[Sequence[RFIDReader]] = None,
    num_shards: int = 1,
    mode: str = "thread",
    use_cache: Optional[bool] = None,
    filter_backend: Optional[str] = None,
) -> TrackingService:
    """:func:`load_checkpoint` + :func:`restore_service` in one call."""
    return restore_service(
        load_checkpoint(path),
        plan=plan,
        readers=readers,
        num_shards=num_shards,
        mode=mode,
        use_cache=use_cache,
        filter_backend=filter_backend,
    )
