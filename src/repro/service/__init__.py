"""repro.service — online tracking and query serving.

Turns the offline batch pipeline into a continuously-running service
(paper Section 6 future work; Hui et al. 2022): raw RFID readings stream
in, per-object particle filters are stepped every epoch tick across a
shard pool, and standing range/kNN query sessions receive result deltas
as objects move. The layers compose left to right::

    ingest  ->  scheduler  ->  shards  ->  sessions
      |             |             |            |
   bounded      epoch tick    parallel     standing-query
   replay /     loop, inj.    per-object   subscriptions,
   live queue   clock         filtering    delta fan-out
                       \\
                        checkpoint (warm restart)

Determinism guarantee: every filter run draws from a private RNG stream
derived from ``(seed, second, object_id)`` via :mod:`repro.rng`, so the
published anchor-point tables, the delta streams, and the final particle
states are bit-identical at **any** shard count, and a checkpoint →
restore → resume sequence reproduces an uninterrupted run tick-for-tick.
"""

from repro.service.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointCompatibilityError,
    load_checkpoint,
    restore_from_file,
    restore_service,
    save_checkpoint,
)
from repro.service.ingest import (
    BoundedQueue,
    LiveSimSource,
    ReadingBatch,
    ReplaySource,
    SourceFeeder,
)
from repro.service.scheduler import EpochScheduler, ManualClock, SystemClock
from repro.service.sessions import SessionManager, Subscription
from repro.service.shards import ShardedFilterExecutor, partition_objects, shard_of
from repro.service.tracking import ServiceSnapshot, TrackingService

__all__ = [
    "BoundedQueue",
    "CHECKPOINT_FORMAT",
    "EpochScheduler",
    "LiveSimSource",
    "ManualClock",
    "ReadingBatch",
    "ReplaySource",
    "ServiceSnapshot",
    "SessionManager",
    "ShardedFilterExecutor",
    "SourceFeeder",
    "Subscription",
    "SystemClock",
    "TrackingService",
    "load_checkpoint",
    "partition_objects",
    "CheckpointCompatibilityError",
    "restore_from_file",
    "restore_service",
    "save_checkpoint",
    "shard_of",
]
